"""Structured benchmark records: ``BENCH_<name>.json``.

The benches used to print their numbers and exit, so the repo accumulated
no trajectory — every optimization PR re-measured from scratch.
:func:`write_bench_record` gives each bench one call that persists what the
run measured: the git revision, the bench configuration, the headline
results, a metrics snapshot, and (when tracing is enabled) the full span
tree.

Records are versioned (:data:`SCHEMA_VERSION`) and validated by
``python -m repro.telemetry check BENCH_*.json`` in CI, so a bench that
silently stops recording fails the build rather than the next reader.
"""

import json
import os
import sys

from . import clocks, metrics
from .export import spans_to_dicts
from .trace import TRACER

SCHEMA_VERSION = 1

#: fields every record must carry (the ``check`` subcommand enforces this)
REQUIRED_FIELDS = (
    "schema",
    "bench",
    "git_rev",
    "created_unix",
    "python",
    "config",
    "results",
    "metrics",
)


def git_rev(root=None):
    """The repository's HEAD commit, or "unknown" outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or os.getcwd(),
            capture_output=True,
            timeout=10,
        )
    except Exception:
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.decode("ascii", "replace").strip() or "unknown"


def build_record(name, config, results, created=None):
    """The record dict for one bench run (spans included when tracing).

    ``created_unix`` reads through the telemetry wall-clock funnel
    (:func:`repro.telemetry.clocks.wall`), never the ambient time source:
    under an injected ``FakeClock`` every field of the record — including
    the timestamp — is deterministic, which is what lets a replayed record
    be compared field-for-field against a certified one.  ``created``
    overrides the stamp explicitly (replay pins it to the certificate's).
    """
    record = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "git_rev": git_rev(),
        "created_unix": clocks.wall() if created is None else created,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "config": dict(config),
        "results": results,
        "metrics": metrics.snapshot(),
    }
    if TRACER.enabled:
        record["spans"] = spans_to_dicts(TRACER.roots)
    return record


def write_bench_record(name, config, results, directory=None,
                       certificate=True, history_dir=None, gate=None):
    """Write ``BENCH_<name>.json`` (to ``directory`` or the cwd); returns
    the path.  ``results`` must be JSON-serializable.

    Unless ``certificate=False``, a hash-committed ``CERT_<name>.json``
    run certificate is written next to the record, chained to the current
    head of ``benchmarks/history/<name>.jsonl`` (see
    :mod:`repro.telemetry.certify`).  ``gate=False`` marks the
    certificate as excluded from trajectory gating (demo records).
    """
    record = build_record(name, config, results)
    path = os.path.join(directory or os.getcwd(), "BENCH_%s.json" % name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    if certificate:
        from .certify import certify_record, write_certificate

        cert = certify_record(record, history_dir=history_dir, gate=gate)
        write_certificate(cert, directory)
    return path


def validate_metrics_consistency(metrics_dict):
    """Internal-consistency check of a record's metrics snapshot.

    Schema shape alone lets a silently corrupted record pass; this checks
    the invariants the live registry maintains: histogram ``count`` equals
    the sum of its buckets, ``min <= max`` whenever observations exist,
    bucket/bound vectors line up, and no counter went negative.
    """
    problems = []
    if not isinstance(metrics_dict, dict):
        return ["metrics is not an object"]
    for name in sorted(metrics_dict):
        value = metrics_dict[name]
        if isinstance(value, dict):
            missing = [k for k in ("count", "sum", "buckets") if k not in value]
            if missing:
                problems.append(
                    "%s: histogram missing %s" % (name, ", ".join(missing))
                )
                continue
            count, buckets = value["count"], value["buckets"]
            if not isinstance(buckets, list) or not all(
                isinstance(b, int) and not isinstance(b, bool) for b in buckets
            ):
                problems.append("%s: buckets is not a list of ints" % name)
                continue
            if any(b < 0 for b in buckets):
                problems.append("%s: negative bucket count" % name)
            if count != sum(buckets):
                problems.append(
                    "%s: count %r != sum(buckets) %r"
                    % (name, count, sum(buckets))
                )
            bounds = value.get("bounds")
            if bounds is not None and len(buckets) != len(bounds) + 1:
                problems.append(
                    "%s: %d buckets for %d bounds"
                    % (name, len(buckets), len(bounds))
                )
            lo, hi = value.get("min"), value.get("max")
            if count > 0:
                if lo is None or hi is None:
                    problems.append(
                        "%s: observations but min/max is null" % name
                    )
                elif lo > hi:
                    problems.append("%s: min %r > max %r" % (name, lo, hi))
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append("%s: non-numeric metric %r" % (name, value))
        elif value < 0:
            problems.append("%s: negative counter %r" % (name, value))
    return problems


def validate_record(record):
    """Schema-check one record dict; returns a list of problems ([] = ok)."""
    problems = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    for field in REQUIRED_FIELDS:
        if field not in record:
            problems.append("missing field %r" % field)
    if record.get("schema") != SCHEMA_VERSION:
        problems.append(
            "schema %r != %d" % (record.get("schema"), SCHEMA_VERSION)
        )
    if not isinstance(record.get("config", {}), dict):
        problems.append("config is not an object")
    metrics = record.get("metrics", {})
    if not isinstance(metrics, dict):
        problems.append("metrics is not an object")
    else:
        problems.extend(validate_metrics_consistency(metrics))
    spans = record.get("spans")
    if spans is not None:
        if not isinstance(spans, list):
            problems.append("spans is not a list")
        else:
            stack = list(spans)
            while stack:
                node = stack.pop()
                if not isinstance(node, dict) or "name" not in node:
                    problems.append("span node without a name")
                    break
                stack.extend(node.get("children", ()))
    return problems


def validate_file(path):
    """Schema-check one ``BENCH_*.json`` file; returns a problem list."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["unreadable: %s" % exc]
    return validate_record(record)
