"""CLI for the wire layer: ``python -m repro.wire {check,regen,show}``.

``check`` recomputes every golden vector and fails (exit 1) on any drift
from the checked-in ``golden_vectors.json`` — CI runs this so the wire
format cannot change without an explicit GOLDEN_FORMAT_VERSION bump.
"""

import argparse
import sys

from .golden import (
    GOLDEN_FORMAT_VERSION,
    check_golden,
    generate_vectors,
    roundtrip_golden,
    write_golden,
)


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.wire")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("check", help="verify golden vectors match the live code")
    sub.add_parser("regen", help="regenerate golden_vectors.json")
    sub.add_parser("show", help="print the live vectors")
    args = parser.parse_args(argv)

    if args.command == "check":
        problems = check_golden() + roundtrip_golden()
        if problems:
            for problem in problems:
                print("FAIL: %s" % problem)
            return 1
        print(
            "golden vectors OK (format v%d, %d vectors)"
            % (GOLDEN_FORMAT_VERSION, len(generate_vectors()))
        )
        return 0
    if args.command == "regen":
        path = write_golden()
        print("wrote %s (format v%d)" % (path, GOLDEN_FORMAT_VERSION))
        return 0
    if args.command == "show":
        for vec in generate_vectors():
            print("%(name)s:" % vec)
            for key in sorted(vec):
                if key != "name":
                    print("  %s: %s" % (key, vec[key]))
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
