"""repro.wire — the canonical proof-envelope layer.

Every proof byte that crosses a trust boundary (prover -> CSR -> CA ->
certificate -> client) travels inside a :class:`ProofEnvelope`; this
package is the only sanctioned producer/consumer of proof wire bytes
(the ``wire-bypass`` hygiene lint enforces it).
"""

from .envelope import (
    FLAG_MANAGED,
    HEADER_SIZE,
    NULLIFIER_REJECTED,
    NULLIFIER_SIZE,
    NULLIFIER_TAG,
    STATEMENT_TAG,
    ProofEnvelope,
    compute_nullifier,
    decode_envelope,
    encode_envelope,
    envelope_size,
    seal,
    statement_digest,
)
from .registry import (
    KIND_GROTH16,
    KIND_SIMULATION,
    VERSION_PRODUCTION,
    VERSION_TOY,
    BodyCodec,
    get_codec,
    kind_for_backend,
    register_codec,
    registered_kinds,
    version_for_profile,
)
from .transport import (
    WirePayload,
    envelope_from_sans,
    envelope_to_sans,
    extract_proof,
)
from .golden import GOLDEN_FORMAT_VERSION, check_golden, roundtrip_golden

__all__ = [
    "FLAG_MANAGED",
    "GOLDEN_FORMAT_VERSION",
    "HEADER_SIZE",
    "KIND_GROTH16",
    "KIND_SIMULATION",
    "NULLIFIER_REJECTED",
    "NULLIFIER_SIZE",
    "NULLIFIER_TAG",
    "STATEMENT_TAG",
    "VERSION_PRODUCTION",
    "VERSION_TOY",
    "BodyCodec",
    "ProofEnvelope",
    "WirePayload",
    "check_golden",
    "compute_nullifier",
    "decode_envelope",
    "encode_envelope",
    "envelope_from_sans",
    "envelope_size",
    "envelope_to_sans",
    "extract_proof",
    "get_codec",
    "kind_for_backend",
    "register_codec",
    "registered_kinds",
    "roundtrip_golden",
    "seal",
    "statement_digest",
    "version_for_profile",
]
