"""Kind registry: which proof systems may ride in an envelope, and how.

Each proof kind owns a tag byte, an ASCII name, a version table mapping
body-version numbers to parameter profiles, and a body codec.  The Groth16
codec is :mod:`repro.groth16.serialize` — the 128-byte compressed
``A || B || C`` encoding the paper reports in Fig. 7 — registered here so
that **no module outside repro.wire touches proof wire bytes directly**
(enforced by the ``wire-bypass`` hygiene lint rule).

Versions name profiles, not byte layouts: version 0 is the toy profile,
version 1 the production profile.  Both use the same 128-byte body today;
a future proof system (or a curve change) registers a new kind/version
instead of silently changing existing bytes — the golden vectors in
:mod:`repro.wire.golden` pin every registered layout.
"""

from ..errors import WireError

#: Groth16 over BN254 — compressed A(32) || B(64) || C(32)
KIND_GROTH16 = 0x01
#: the non-cryptographic simulation backend's 128-byte attestation digest
KIND_SIMULATION = 0x02

#: body version <-> parameter profile (shared by both current kinds)
VERSION_TOY = 0
VERSION_PRODUCTION = 1
_PROFILE_VERSIONS = {"toy": VERSION_TOY, "production": VERSION_PRODUCTION}


class BodyCodec:
    """Encode/decode/validate one proof kind's canonical body bytes."""

    def __init__(self, kind, name, body_size, versions):
        self.kind = kind
        self.name = name
        self.body_size = body_size
        #: version number -> profile name
        self.versions = dict(versions)

    def check_version(self, version):
        if version not in self.versions:
            raise WireError(
                "unregistered %s body version %d" % (self.name, version)
            )

    def validate(self, body):
        """Raise WireError unless ``body`` is canonical for this kind."""
        if len(body) != self.body_size:
            raise WireError(
                "%s body must be %d bytes, got %d"
                % (self.name, self.body_size, len(body))
            )

    def encode(self, obj):
        raise NotImplementedError

    def decode(self, body):
        raise NotImplementedError


class Groth16Codec(BodyCodec):
    """The paper's 128-byte proof as an envelope body."""

    def __init__(self):
        super().__init__(
            KIND_GROTH16, "groth16", 128,
            {VERSION_TOY: "toy", VERSION_PRODUCTION: "production"},
        )

    def encode(self, proof):
        from ..groth16.serialize import proof_to_bytes

        return proof_to_bytes(proof)

    def decode(self, body):
        from ..errors import EncodingError
        from ..groth16.serialize import proof_from_bytes

        try:
            return proof_from_bytes(body)
        except WireError:
            raise
        except EncodingError as exc:
            raise WireError("non-canonical groth16 body: %s" % exc) from exc

    def validate(self, body):
        super().validate(body)
        # full canonical-form check: every point must decode (flags, range,
        # on-curve, subgroup); compressed decoding re-encodes bijectively,
        # so decode success == byte-canonical
        self.decode(body)


class SimulationCodec(BodyCodec):
    """Opaque 128-byte attestation digest (size-parity with Groth16)."""

    def __init__(self):
        super().__init__(
            KIND_SIMULATION, "simulation", 128,
            {VERSION_TOY: "toy", VERSION_PRODUCTION: "production"},
        )

    def encode(self, proof):
        return proof.digest if hasattr(proof, "digest") else bytes(proof)

    def decode(self, body):
        self.validate(body)
        return bytes(body)


_CODECS = {}


def register_codec(codec):
    if codec.kind in _CODECS:
        raise WireError("kind tag %#x already registered" % codec.kind)
    _CODECS[codec.kind] = codec
    return codec


def get_codec(kind):
    codec = _CODECS.get(kind)
    if codec is None:
        raise WireError("unknown proof kind tag %#x" % kind)
    return codec


def registered_kinds():
    return dict(_CODECS)


def kind_for_backend(backend_name):
    """Map a proof-system backend name onto its envelope kind tag."""
    table = {"groth16": KIND_GROTH16, "simulation": KIND_SIMULATION}
    if backend_name not in table:
        raise WireError("no envelope kind for backend %r" % backend_name)
    return table[backend_name]


def version_for_profile(profile_name):
    """Map a parameter-profile name onto its envelope body version."""
    if profile_name not in _PROFILE_VERSIONS:
        raise WireError("no envelope version for profile %r" % profile_name)
    return _PROFILE_VERSIONS[profile_name]


register_codec(Groth16Codec())
register_codec(SimulationCodec())
