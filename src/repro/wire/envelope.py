"""Canonical proof envelope: the one wire format for proof bytes.

Every proof that leaves the prover travels inside a deterministic,
type-tagged envelope (modeled on the animicaorg ENVELOPE spec): a kind
tag naming the proof system, a body version naming the parameter profile,
a flags byte, a statement digest binding the envelope to one statement
shape, the canonical body bytes, and a 32-byte **nullifier**.

The nullifier is a domain-separated hash over
``tag || version || flags || statement || domain || body``, so the same
proof body cannot be rebound to a different domain (the recomputed
nullifier would not match the carried one) and clients/CAs can refuse the
same envelope appearing under more than one certificate.

Wire layout (all integers big-endian)::

    [0]        kind tag     (uint8, see repro.wire.registry)
    [1]        body version (uint8, registered per kind; names a profile)
    [2]        flags        (uint8; bit0 = managed statement, rest MBZ)
    [3:35]     statement digest (32 bytes)
    [35:37]    body length  (uint16)
    [37:37+L]  body         (canonical bytes per the kind codec)
    [37+L:]    nullifier    (32 bytes)

Decoding is strict: unknown tags/versions, reserved flag bits, length
mismatches, trailing bytes, non-canonical bodies, and nullifier
mismatches are all distinct rejection classes.  Checked-in golden vectors
(:mod:`repro.wire.golden`) pin this layout byte-for-byte.
"""

import hmac

from ..errors import NullifierError, WireError
from ..hashes.sha256 import sha256
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span

#: explicit hash-domain tags — envelope hashes can never collide with
#: protocol digests computed elsewhere in the codebase
NULLIFIER_TAG = b"NOPE/WIRE/NULLIFIER/V1"
STATEMENT_TAG = b"NOPE/WIRE/STATEMENT/V1"

#: fixed header bytes before the body: kind + version + flags + statement
#: digest + body length
HEADER_SIZE = 1 + 1 + 1 + 32 + 2
NULLIFIER_SIZE = 32

#: flags bit 0: the proof is for the NOPE-managed statement (paper App. A)
FLAG_MANAGED = 0x01
_KNOWN_FLAGS = FLAG_MANAGED

_ENCODED = _metrics.counter("wire.encode")
_DECODED = _metrics.counter("wire.decode")
NULLIFIER_REJECTED = _metrics.counter("wire.nullifier_rejected")


def envelope_size(body_len):
    """Total wire size of an envelope carrying ``body_len`` body bytes."""
    return HEADER_SIZE + body_len + NULLIFIER_SIZE


def statement_digest(shape_id):
    """32-byte digest binding an envelope to one statement shape."""
    if isinstance(shape_id, str):
        shape_id = shape_id.encode()
    return sha256(STATEMENT_TAG + b"|" + shape_id)


def compute_nullifier(kind, version, flags, statement, domain, body):
    """The anti-reuse hash over the envelope's canonical bytes + domain.

    The domain is length-prefixed so ``("ab", "c...")`` and
    ``("a", "bc...")`` can never produce the same preimage.
    """
    if isinstance(domain, str):
        domain = domain.rstrip(".").lower().encode()
    preimage = (
        NULLIFIER_TAG
        + bytes([kind, version, flags])
        + statement
        + len(domain).to_bytes(2, "big")
        + domain
        + body
    )
    return sha256(preimage)


class ProofEnvelope:
    """A decoded (or freshly sealed) proof envelope."""

    __slots__ = ("kind", "version", "flags", "statement", "body", "domain",
                 "nullifier")

    def __init__(self, kind, version, flags, statement, body, domain,
                 nullifier):
        self.kind = kind
        self.version = version
        self.flags = flags
        self.statement = statement
        self.body = body
        self.domain = domain
        self.nullifier = nullifier

    @property
    def managed(self):
        return bool(self.flags & FLAG_MANAGED)

    def __repr__(self):
        return "ProofEnvelope(kind=%d v%d flags=%#x domain=%s body=%dB)" % (
            self.kind, self.version, self.flags, self.domain, len(self.body)
        )

    def __eq__(self, other):
        if not isinstance(other, ProofEnvelope):
            return NotImplemented
        return encode_envelope(self) == encode_envelope(other) and (
            self.domain == other.domain
        )


def seal(kind, version, body, domain, shape_id=None, statement=None,
         managed=False):
    """Build a :class:`ProofEnvelope` around canonical ``body`` bytes.

    The body is validated against the kind's registered codec so a
    non-canonical proof can never be sealed in the first place.
    """
    from .registry import get_codec

    codec = get_codec(kind)
    codec.check_version(version)
    codec.validate(body)
    if statement is None:
        if shape_id is None:
            raise WireError("seal() needs a shape_id or a statement digest")
        statement = statement_digest(shape_id)
    if len(statement) != 32:
        raise WireError("statement digest must be 32 bytes")
    domain = domain.rstrip(".").lower()
    flags = FLAG_MANAGED if managed else 0
    nullifier = compute_nullifier(kind, version, flags, statement, domain, body)
    return ProofEnvelope(kind, version, flags, statement, bytes(body), domain,
                         nullifier)


def encode_envelope(env):
    """Serialize to the canonical wire bytes (deterministic)."""
    if len(env.body) > 0xFFFF:
        raise WireError("envelope body exceeds the 64 KiB length field")
    with _span("wire.encode", kind=env.kind):
        _ENCODED.inc()
        return (
            bytes([env.kind, env.version, env.flags])
            + env.statement
            + len(env.body).to_bytes(2, "big")
            + env.body
            + env.nullifier
        )


def decode_envelope(data, domain):
    """Strict inverse of :func:`encode_envelope` for one expected domain.

    Every rejection class raises :class:`WireError` (or the
    :class:`NullifierError` subclass for rebinding/tamper):

    * truncated header or truncated body/nullifier;
    * trailing bytes after the nullifier;
    * unknown kind tag, unregistered body version, reserved flag bits;
    * non-canonical body bytes (the kind codec re-validates);
    * nullifier mismatch — including a valid envelope lifted from a
      *different* domain, since the domain enters the nullifier hash.
    """
    with _span("wire.decode", size=len(data)):
        if len(data) < HEADER_SIZE + NULLIFIER_SIZE:
            raise WireError("envelope truncated: %d bytes" % len(data))
        kind, version, flags = data[0], data[1], data[2]
        from .registry import get_codec

        codec = get_codec(kind)  # raises WireError on unknown tag
        codec.check_version(version)
        if flags & ~_KNOWN_FLAGS:
            raise WireError("reserved envelope flag bits set: %#x" % flags)
        statement = data[3:35]
        body_len = int.from_bytes(data[35:37], "big")
        expected = HEADER_SIZE + body_len + NULLIFIER_SIZE
        if len(data) < expected:
            raise WireError("envelope truncated: body length says %d" % body_len)
        if len(data) > expected:
            raise WireError(
                "trailing bytes after envelope (%d extra)" % (len(data) - expected)
            )
        body = data[HEADER_SIZE:HEADER_SIZE + body_len]
        nullifier = data[HEADER_SIZE + body_len:]
        codec.validate(body)
        domain = domain.rstrip(".").lower()
        computed = compute_nullifier(kind, version, flags, statement, domain, body)
        if not hmac.compare_digest(nullifier, computed):
            NULLIFIER_REJECTED.inc()
            raise NullifierError(
                "envelope nullifier mismatch for %s (rebound or tampered)"
                % domain
            )
        _DECODED.inc()
        return ProofEnvelope(kind, version, flags, statement, body, domain,
                             nullifier)
