"""Checked-in golden vectors pinning the wire format byte-for-byte.

``golden_vectors.json`` is generated once per format revision and checked
in; CI recomputes every vector from the live code and fails on any drift.
Changing the wire format therefore requires bumping
:data:`GOLDEN_FORMAT_VERSION` *and* regenerating the file
(``python -m repro.wire regen``) in the same change — a silent encoding
change cannot land.

Vector bodies are derived deterministically (fixed scalars against the
BN254 generators for Groth16 bodies, a SHA-256 counter stream for opaque
bodies), so regeneration is reproducible on any machine.
"""

import json
import os

from ..ec.curves import BN254_G1, BN254_R
from ..groth16.keys import Proof
from ..hashes.sha256 import sha256
from ..pairing.bn254 import G2_GENERATOR
from .envelope import encode_envelope, seal
from .registry import (
    KIND_GROTH16,
    KIND_SIMULATION,
    VERSION_PRODUCTION,
    VERSION_TOY,
    get_codec,
)
from .transport import envelope_to_sans

#: bump when the wire format (envelope layout, SAN layout, checksum, or
#: nullifier derivation) intentionally changes, and regenerate the file
GOLDEN_FORMAT_VERSION = 1

_DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "golden_vectors.json")


def _det_bytes(n, tag):
    """n deterministic bytes from a SHA-256 counter stream."""
    out = b""
    counter = 0
    while len(out) < n:
        out += sha256(b"NOPE/WIRE/GOLDEN|" + tag + counter.to_bytes(4, "big"))
        counter += 1
    return out[:n]


def _det_scalar(tag):
    return int.from_bytes(_det_bytes(32, tag), "big") % BN254_R or 1


def _det_groth16_body(tag):
    proof = Proof(
        _det_scalar(tag + b"/a") * BN254_G1.generator,
        _det_scalar(tag + b"/b") * G2_GENERATOR,
        _det_scalar(tag + b"/c") * BN254_G1.generator,
    )
    return get_codec(KIND_GROTH16).encode(proof)


def generate_vectors():
    """Recompute every golden vector from the live code."""
    cases = [
        ("groth16-toy", KIND_GROTH16, VERSION_TOY, "example.com",
         "toy/d2/nope/nope", False, _det_groth16_body(b"g16-toy")),
        ("groth16-production-managed", KIND_GROTH16, VERSION_PRODUCTION,
         "nope-tools.org", "production/d2/nope/nope/managed", True,
         _det_groth16_body(b"g16-prod")),
        ("simulation-toy", KIND_SIMULATION, VERSION_TOY, "victim.example",
         "toy/d2/nope/nope", False, _det_bytes(128, b"sim-toy")),
    ]
    vectors = []
    for name, kind, version, domain, shape_id, managed, body in cases:
        env = seal(kind, version, body, domain, shape_id=shape_id,
                   managed=managed)
        vectors.append({
            "name": name,
            "kind": kind,
            "version": version,
            "flags": env.flags,
            "domain": domain,
            "shape_id": shape_id,
            "body": body.hex(),
            "envelope": encode_envelope(env).hex(),
            "nullifier": env.nullifier.hex(),
            "sans": envelope_to_sans(env),
        })
    # legacy version-0 SAN payload: raw proof + metadata character, kept
    # decodable forever
    from ..x509.san import encode_proof_chars, encode_proof_sans

    legacy_proof = _det_bytes(128, b"legacy-v0")
    vectors.append({
        "name": "legacy-san-v0",
        "kind": None,
        "version": 0,
        "domain": "example.com",
        "proof": legacy_proof.hex(),
        "metadata": 1,
        "chars": encode_proof_chars(legacy_proof, metadata=1),
        "sans": encode_proof_sans(legacy_proof, "example.com", metadata=1),
    })
    return vectors


def _render():
    return {
        "format_version": GOLDEN_FORMAT_VERSION,
        "vectors": generate_vectors(),
    }


def write_golden(path=_DEFAULT_PATH):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_render(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_golden(path=_DEFAULT_PATH):
    """Compare the live encoding against the checked-in file.

    Returns a list of problem strings (empty = the format is unchanged).
    """
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            stored = json.load(fh)
    except (OSError, ValueError) as exc:
        return ["cannot load golden vectors: %s" % exc]
    if stored.get("format_version") != GOLDEN_FORMAT_VERSION:
        problems.append(
            "format_version mismatch: file says %r, code says %d — "
            "regenerate the vectors alongside the version bump"
            % (stored.get("format_version"), GOLDEN_FORMAT_VERSION)
        )
    live = {v["name"]: v for v in generate_vectors()}
    seen = set()
    for vec in stored.get("vectors", ()):
        name = vec.get("name", "<unnamed>")
        seen.add(name)
        if name not in live:
            problems.append("vector %r in file but no longer generated" % name)
            continue
        for key, value in live[name].items():
            if vec.get(key) != value:
                problems.append(
                    "vector %r field %r drifted (wire format changed "
                    "without a GOLDEN_FORMAT_VERSION bump)" % (name, key)
                )
    for name in live:
        if name not in seen:
            problems.append("new vector %r missing from the checked-in file" % name)
    return problems


def roundtrip_golden(path=_DEFAULT_PATH):
    """Decode every checked-in vector; returns problem strings."""
    from ..errors import EncodingError
    from .envelope import decode_envelope
    from .transport import extract_proof
    from ..x509.san import decode_proof_sans

    problems = []
    with open(path, "r", encoding="utf-8") as fh:
        stored = json.load(fh)
    for vec in stored.get("vectors", ()):
        name = vec["name"]
        try:
            if vec.get("kind") is None:
                proof, metadata = decode_proof_sans(vec["sans"], vec["domain"])
                if proof.hex() != vec["proof"] or metadata != vec["metadata"]:
                    problems.append("vector %r legacy decode mismatch" % name)
                continue
            env = decode_envelope(bytes.fromhex(vec["envelope"]), vec["domain"])
            if env.nullifier.hex() != vec["nullifier"]:
                problems.append("vector %r nullifier mismatch" % name)
            payload = extract_proof(vec["sans"], vec["domain"])
            if payload.body.hex() != vec["body"]:
                problems.append("vector %r SAN roundtrip mismatch" % name)
        except EncodingError as exc:
            problems.append("vector %r failed to decode: %s" % (name, exc))
    return problems
