"""Envelope <-> X.509 SAN transport.

The only sanctioned path between proof envelopes and certificate SANs.
Producers call :func:`envelope_to_sans`; consumers call
:func:`extract_proof`, which understands both the version-1 envelope
payload and the legacy version-0 raw-proof payload and returns a uniform
:class:`WirePayload` view.
"""

from ..errors import EncodingError, WireError
from ..x509.san import (
    SAN_LAYOUTS,
    SAN_VERSION_ENVELOPE,
    SAN_VERSION_LEGACY,
    decode_payload_chars,
    encode_payload_sans,
    is_nope_san,
)
from ..x509 import san as _san
from .envelope import ProofEnvelope, decode_envelope, encode_envelope, envelope_size

#: both registered kinds carry a 128-byte body, so the SAN layout's fixed
#: envelope payload size must match envelope_size(128)
assert SAN_LAYOUTS[SAN_VERSION_ENVELOPE].payload_bytes == envelope_size(128)


class WirePayload:
    """What a certificate's SAN set said about one domain's proof."""

    __slots__ = ("san_version", "envelope", "body", "managed", "consumed")

    def __init__(self, san_version, envelope, body, managed, consumed):
        #: SAN payload version (0 legacy, 1 envelope)
        self.san_version = san_version
        #: the decoded :class:`ProofEnvelope`, or None for legacy payloads
        self.envelope = envelope
        #: raw proof body bytes (what the backend verifies)
        self.body = body
        #: the managed-statement flag (envelope flag bit / legacy metadata)
        self.managed = managed
        #: which SAN names this payload was assembled from
        self.consumed = consumed

    @property
    def nullifier(self):
        return self.envelope.nullifier if self.envelope is not None else None


def envelope_to_sans(env, domain=None):
    """Encode an envelope into its SAN hostname set."""
    if not isinstance(env, ProofEnvelope):
        raise WireError("envelope_to_sans wants a ProofEnvelope")
    domain = (domain or env.domain).rstrip(".")
    if domain != env.domain:
        raise WireError(
            "envelope sealed for %s cannot be emitted under %s"
            % (env.domain, domain)
        )
    return encode_payload_sans(encode_envelope(env), domain, SAN_VERSION_ENVELOPE)


def _consumed_names(san_names, domain):
    suffix = "." + domain.rstrip(".")
    out = []
    for name in san_names:
        if is_nope_san(name) and name.endswith(suffix):
            labels = name[: -len(suffix)].split(".")[1:]
            if labels and all(
                len(l) == _san.LABEL_LEN
                and all(c in _san._CHAR_INDEX for c in l)
                for l in labels
            ):
                out.append(name)
    return out


def extract_proof(san_names, domain):
    """Decode the NOPE SAN set for ``domain`` into a :class:`WirePayload`.

    Version-1 payloads are decoded as strict envelopes — which recomputes
    the nullifier over *this* domain, so an envelope lifted from another
    domain's certificate is rejected here with
    :class:`repro.errors.NullifierError`.  Version-0 payloads fall back to
    the legacy raw-proof view (no envelope, no nullifier).
    """
    chars = _san._collect_payload_chars(san_names, domain)
    version, payload, metadata = decode_payload_chars(chars)
    consumed = _consumed_names(san_names, domain)
    if version == SAN_VERSION_LEGACY:
        return WirePayload(version, None, payload, metadata == 1, consumed)
    env = decode_envelope(payload, domain)
    return WirePayload(version, env, env.body, env.managed, consumed)


def envelope_from_sans(san_names, domain):
    """Strict envelope extraction (rejects legacy version-0 payloads)."""
    payload = extract_proof(san_names, domain)
    if payload.envelope is None:
        raise WireError(
            "SAN set for %s carries a legacy version-0 proof, not an envelope"
            % domain
        )
    return payload.envelope
