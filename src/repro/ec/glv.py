"""Scalar decomposition for accelerated ECDSA verification (paper App. C).

Antipa et al. [5] observed that checking ``R = h0*G + h1*Q`` (a 256-bit
2-point MSM) can be transformed into a half-width MSM: find a nonzero ``v``
such that both ``v`` and ``h1 * v mod n`` fit in ~128 bits, then check the
equivalent equation with 128-bit scalars.

Finding ``v`` uses the extended Euclidean algorithm on ``(n, h1)``, stopped
at the first remainder below ``sqrt(n)``.  Normally this cost makes the
transformation unattractive; NOPE's insight (§5.3) is that the *prover* can
compute ``v`` outside the constraints, and the constraints merely validate
it — halving the in-circuit MSM width.

This module provides the out-of-circuit side: :func:`decompose` is used both
by the ECDSA gadget's witness generation and by the natively accelerated
verifier.
"""

import math

from ..errors import CurveError


def decompose(h1, n):
    """Find small ``(v, rem, sign)`` with ``h1 * v = sign * rem (mod n)``.

    Returns ``v > 0`` and ``rem >= 0``, each at most about ``sqrt(n)`` (in
    the worst case a couple of bits more), and ``sign`` in ``{+1, -1}``.
    Raises CurveError for ``h1 = 0 (mod n)``.
    """
    h1 %= n
    if h1 == 0:
        raise CurveError("decompose: scalar is zero mod n")
    bound = math.isqrt(n)
    r0, r1 = n, h1
    t0, t1 = 0, 1
    while r1 > bound:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    # invariant: t1 * h1 = r1 (mod n)
    if t1 == 0:
        raise CurveError("decompose: degenerate decomposition")
    if t1 > 0:
        return t1, r1, 1
    return -t1, r1, -1


def half_width_bound(n):
    """Bit bound that both components of :func:`decompose` satisfy.

    The classical analysis gives ``|v| <= n / r_prev < n / sqrt(n) =
    sqrt(n)``; allowing one slack bit covers rounding.  The ECDSA gadget
    range-checks against this bound.
    """
    return (n.bit_length() + 1) // 2 + 1
