"""Scalar decomposition: accelerated ECDSA (paper App. C) and GLV for MSM.

Two closely related half-width tricks live here, both built on the same
extended-Euclidean walk over ``(n, lam)``:

* **Antipa et al. [5]** (:func:`decompose`): checking ``R = h0*G + h1*Q``
  (a 256-bit 2-point MSM) transforms into a half-width MSM: find a nonzero
  ``v`` such that both ``v`` and ``h1 * v mod n`` fit in ~128 bits, then
  check the equivalent equation with 128-bit scalars.  NOPE's insight
  (§5.3) is that the *prover* computes ``v`` outside the constraints and
  the constraints merely validate it — halving the in-circuit MSM width.

* **GLV [Gallant-Lambert-Vanstone]** (:func:`glv_basis` /
  :func:`split_scalar` / :func:`curve_endomorphism`): on ``j = 0`` curves
  (``y^2 = x^3 + b`` with ``p = 1 mod 3``) the map ``phi(x, y) =
  (beta*x, y)`` is an endomorphism acting as multiplication by a cube root
  of unity ``lam`` on the prime-order subgroup.  Any 256-bit scalar ``k``
  splits as ``k = k1 + k2*lam (mod n)`` with ``|k1|, |k2| ~ sqrt(n)``, so
  ``k*P`` becomes ``k1*P + k2*phi(P)`` — two half-width halves over an
  endomorphism-mapped base set.  The engine's Pippenger MSM uses this to
  halve its window count (:mod:`repro.engine.msm`), and the natively
  accelerated ECDSA verifier uses it on endomorphism-capable curves.

This module provides only out-of-circuit arithmetic; the ECDSA gadget's
witness generation and the native verifiers share it.
"""

import math

from ..errors import CurveError

#: memo: Curve -> (beta, lam) or None
_ENDOMORPHISMS = {}


def decompose(h1, n):
    """Find small ``(v, rem, sign)`` with ``h1 * v = sign * rem (mod n)``.

    Returns ``v > 0`` and ``rem >= 0``, each at most about ``sqrt(n)`` (in
    the worst case a couple of bits more), and ``sign`` in ``{+1, -1}``.
    Raises CurveError for ``h1 = 0 (mod n)``.
    """
    h1 %= n
    if h1 == 0:
        raise CurveError("decompose: scalar is zero mod n")
    bound = math.isqrt(n)
    r0, r1 = n, h1
    t0, t1 = 0, 1
    while r1 > bound:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    # invariant: t1 * h1 = r1 (mod n)
    if t1 == 0:
        raise CurveError("decompose: degenerate decomposition")
    if t1 > 0:
        return t1, r1, 1
    return -t1, r1, -1


def half_width_bound(n):
    """Bit bound that both components of :func:`decompose` satisfy.

    The classical analysis gives ``|v| <= n / r_prev < n / sqrt(n) =
    sqrt(n)``; allowing one slack bit covers rounding.  The ECDSA gadget
    range-checks against this bound.
    """
    return (n.bit_length() + 1) // 2 + 1


# -- GLV lattice decomposition ----------------------------------------------


def glv_basis(lam, n):
    """Two short lattice vectors ``(a, b)`` with ``a + b*lam = 0 (mod n)``.

    The extended Euclidean walk on ``(n, lam)`` maintains ``t_i * lam =
    r_i (mod n)``, i.e. every ``(r_i, -t_i)`` lies in the GLV lattice.
    Stopping at the first remainder below ``sqrt(n)`` yields one short
    vector; its neighbours supply the second (the shorter of the two, so
    Babai rounding against the pair keeps both split halves half-width).
    """
    lam %= n
    if lam == 0:
        raise CurveError("glv_basis: lambda is zero mod n")
    bound = math.isqrt(n)
    r0, r1 = n, lam
    t0, t1 = 0, 1
    while r1 > bound:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    v1 = (r1, -t1)
    # candidate second vectors: the predecessor and the successor remainders
    q = r0 // r1
    r2, t2 = r0 - q * r1, t0 - q * t1
    prev = (r0, -t0)
    nxt = (r2, -t2)
    v2 = prev if _norm2(prev) <= _norm2(nxt) else nxt
    return v1, v2


def _norm2(vec):
    return vec[0] * vec[0] + vec[1] * vec[1]


def _round_div(num, den):
    """round(num / den) with round-half-up, exact over ints (den > 0)."""
    return (2 * num + den) // (2 * den)


def split_scalar(k, n, basis):
    """Split ``k`` into ``(k1, k2)`` with ``k1 + k2*lam = k (mod n)``.

    ``basis`` is the pair from :func:`glv_basis`.  Babai round-off against
    the short basis keeps ``|k1|, |k2|`` within a couple of bits of
    ``sqrt(n)``; either half may be negative (callers negate the base
    point rather than the scalar).
    """
    (a1, b1), (a2, b2) = basis
    det = a1 * b2 - a2 * b1
    if det == 0:
        raise CurveError("split_scalar: degenerate basis")
    k %= n
    # solve (k, 0) = beta1*v1 + beta2*v2 over Q, round to the lattice
    num1, num2 = k * b2, -k * b1
    if det < 0:
        det, num1, num2 = -det, -num1, -num2
    c1 = _round_div(num1, det)
    c2 = _round_div(num2, det)
    k1 = k - c1 * a1 - c2 * a2
    k2 = -c1 * b1 - c2 * b2
    return k1, k2


def _cube_roots_of_unity(field):
    """The two primitive cube roots of unity in a field with p = 1 mod 3."""
    # x^2 + x + 1 = 0  =>  x = (-1 +/- sqrt(-3)) / 2
    s = field.sqrt((-3) % field.p)
    inv2 = field.inv(2)
    r1 = (s - 1) * inv2 % field.p
    r2 = (-s - 1) * inv2 % field.p
    return r1, r2


def curve_endomorphism(curve):
    """``(beta, lam)`` for the GLV endomorphism of a ``j = 0`` curve, or None.

    ``phi(x, y) = (beta*x mod p, y)`` equals multiplication by ``lam`` on
    the prime-order subgroup.  The pairing of the two cube roots mod ``p``
    with the one mod ``n`` is fixed by testing against the curve generator;
    the result is memoized per curve.  Curves without the endomorphism
    (``a != 0``, or ``p != 1 mod 3``) return None.
    """
    cached = _ENDOMORPHISMS.get(curve, _ENDOMORPHISMS)
    if cached is not _ENDOMORPHISMS:
        return cached
    params = None
    p, n = curve.field.p, curve.order
    if curve.a % p == 0 and p % 3 == 1 and n % 3 == 1:
        from .curve import jac_mul, jac_to_affine

        lam1, lam2 = _cube_roots_of_unity(curve.scalar_field)
        betas = _cube_roots_of_unity(curve.field)
        g = curve.generator
        for lam in (lam1, lam2):
            target = jac_to_affine(curve, jac_mul(curve, (g.x, g.y, 1), lam))
            for beta in betas:
                if target == (beta * g.x % p, g.y):
                    params = (beta, lam)
                    break
            if params is not None:
                break
    _ENDOMORPHISMS[curve] = params
    return params
