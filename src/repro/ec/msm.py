"""Multi-scalar multiplication (MSM).

The Groth16 prover's cost is dominated by MSMs of size ~m (the number of
constraints), so this module implements the Pippenger bucket method over
Jacobian coordinates with mixed (Jacobian + affine) bucket additions.  A
Straus/Shamir joint ladder is provided for the tiny fixed-width MSMs that
appear in signature verification (2-4 points).
"""

import math

from .curve import (
    JAC_INFINITY,
    Point,
    jac_add,
    jac_add_affine,
    jac_double,
    jac_is_infinity,
)


def _window_bits(n):
    """Pippenger window size heuristic for an n-point MSM."""
    if n < 4:
        return 1
    return max(2, min(16, int(math.log2(n))))


def msm(points, scalars):
    """Compute sum(k_i * P_i) for affine Points; returns a Point.

    Pairs with zero scalars or infinity points are skipped.  All points must
    share a curve.
    """
    if len(points) != len(scalars):
        raise ValueError("msm: points and scalars differ in length")
    if not points:
        raise ValueError("msm: empty input")
    curve = points[0].curve
    pairs = [
        ((pt.x, pt.y), k % curve.order)
        for pt, k in zip(points, scalars)
        if not pt.is_infinity and k % curve.order != 0
    ]
    if not pairs:
        return curve.infinity
    jac = msm_jacobian(curve, [p for p, _ in pairs], [k for _, k in pairs])
    return Point.from_jacobian(curve, jac)


def msm_jacobian(curve, affine_points, scalars):
    """Pippenger MSM over affine coordinate tuples; returns a Jacobian tuple."""
    n = len(affine_points)
    if n == 0:
        return JAC_INFINITY
    if n == 1:
        from .curve import jac_mul

        return jac_mul(curve, (affine_points[0][0], affine_points[0][1], 1), scalars[0])
    c = _window_bits(n)
    max_bits = max(k.bit_length() for k in scalars)
    num_windows = (max_bits + c - 1) // c or 1
    mask = (1 << c) - 1
    result = JAC_INFINITY
    for w in range(num_windows - 1, -1, -1):
        if not jac_is_infinity(result):
            for _ in range(c):
                result = jac_double(curve, result)
        buckets = [JAC_INFINITY] * ((1 << c) - 1)
        shift = w * c
        for pt, k in zip(affine_points, scalars):
            digit = (k >> shift) & mask
            if digit:
                buckets[digit - 1] = jac_add_affine(curve, buckets[digit - 1], pt)
        acc = JAC_INFINITY
        window_sum = JAC_INFINITY
        for b in range(len(buckets) - 1, -1, -1):
            if not jac_is_infinity(buckets[b]):
                acc = jac_add(curve, acc, buckets[b])
            if not jac_is_infinity(acc):
                window_sum = jac_add(curve, window_sum, acc)
        result = jac_add(curve, result, window_sum)
    return result


class FixedBaseTable:
    """Precomputed windowed table for many scalar multiplications of one base.

    Used by the Groth16 trusted setup, which must compute tens of thousands
    of multiples of the same generator: after a one-time precomputation of
    ``(bits/window) * 2^window`` points, each scalar multiplication is just
    ``bits/window`` additions.  Works for any group element supporting
    ``+`` and unary ``-`` with an explicit identity (G1 Points and pairing
    G2Points both qualify).
    """

    def __init__(self, base, identity, max_bits, window=8):
        self.window = window
        self.identity = identity
        self.num_windows = (max_bits + window - 1) // window
        self.tables = []
        current = base
        for _ in range(self.num_windows):
            row = [identity]
            for _ in range((1 << window) - 1):
                row.append(row[-1] + current)
            self.tables.append(row)
            # advance base by 2^window
            current = row[-1] + current
        self.mask = (1 << window) - 1

    def mul(self, k):
        """k * base using the precomputed table."""
        if k < 0 or k.bit_length() > self.window * self.num_windows:
            raise ValueError("scalar exceeds the precomputed table width")
        acc = self.identity
        w = 0
        while k:
            digit = k & self.mask
            if digit:
                acc = acc + self.tables[w][digit]
            k >>= self.window
            w += 1
        return acc


def straus(points, scalars, window=2):
    """Straus/Shamir joint scalar multiplication for small fixed MSMs.

    Precomputes the 2^(w*len) combination table, then walks the scalars'
    bits jointly.  Intended for 2-4 points (e.g. ECDSA's u1*G + u2*Q).
    """
    if len(points) != len(scalars):
        raise ValueError("straus: points and scalars differ in length")
    if not points:
        raise ValueError("straus: empty input")
    curve = points[0].curve
    scalars = [k % curve.order for k in scalars]
    npts = len(points)
    if npts * window > 12:
        raise ValueError("straus table too large; use msm() instead")
    # table[i] = sum of digit_j(i) * P_j for the joint index i
    table_size = 1 << (window * npts)
    table = [curve.infinity] * table_size
    # small doubles of each point
    pt_multiples = []
    for pt in points:
        row = [curve.infinity]
        for _ in range((1 << window) - 1):
            row.append(row[-1] + pt)
        pt_multiples.append(row)
    for idx in range(1, table_size):
        acc = curve.infinity
        for j in range(npts):
            digit = (idx >> (j * window)) & ((1 << window) - 1)
            acc = acc + pt_multiples[j][digit]
        table[idx] = acc
    max_bits = max((k.bit_length() for k in scalars), default=1) or 1
    num_windows = (max_bits + window - 1) // window
    mask = (1 << window) - 1
    result = curve.infinity
    for w in range(num_windows - 1, -1, -1):
        for _ in range(window):
            result = result + result
        idx = 0
        for j, k in enumerate(scalars):
            idx |= ((k >> (w * window)) & mask) << (j * window)
        if idx:
            result = result + table[idx]
    return result
