"""Multi-scalar multiplication (MSM) — thin wrappers over ``repro.engine``.

The Groth16 prover's cost is dominated by MSMs of size ~m (the number of
constraints); the actual Pippenger bucket kernel is group-generic and lives
in :mod:`repro.engine.msm` (one implementation for G1 and G2, with an
optional parallel path).  This module keeps the historical entry points —
``msm``/``msm_jacobian`` for affine Points and Jacobian tuples, ``straus``
for the tiny fixed-width MSMs in signature verification, and the
``FixedBaseTable`` re-export — so callers below the engine layer keep
working.  Engine imports are lazy to avoid an ec <-> engine import cycle.
"""


def msm(points, scalars):
    """Compute sum(k_i * P_i) for affine Points; returns a Point.

    Pairs with zero scalars or infinity points are skipped.  All points must
    share a curve.
    """
    from ..engine import DEFAULT_ENGINE

    return DEFAULT_ENGINE.msm_points(points, scalars)


def msm_jacobian(curve, affine_points, scalars):
    """Pippenger MSM over affine coordinate tuples; returns a Jacobian tuple."""
    from ..engine import DEFAULT_ENGINE

    return DEFAULT_ENGINE.msm_jacobian(curve, affine_points, scalars)


def _fixed_base_table():
    from ..engine.tables import FixedBaseTable as _FBT

    return _FBT


def __getattr__(name):
    # FixedBaseTable moved to repro.engine.tables; resolve lazily so that
    # importing repro.ec does not trigger the engine package.
    if name == "FixedBaseTable":
        return _fixed_base_table()
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def straus(points, scalars, window=2):
    """Straus/Shamir joint scalar multiplication for small fixed MSMs.

    Precomputes the 2^(w*len) combination table, then walks the scalars'
    bits jointly.  Intended for 2-4 points (e.g. ECDSA's u1*G + u2*Q).
    """
    if len(points) != len(scalars):
        raise ValueError("straus: points and scalars differ in length")
    if not points:
        raise ValueError("straus: empty input")
    curve = points[0].curve
    scalars = [k % curve.order for k in scalars]
    npts = len(points)
    if npts * window > 12:
        raise ValueError("straus table too large; use msm() instead")
    # table[i] = sum of digit_j(i) * P_j for the joint index i
    table_size = 1 << (window * npts)
    table = [curve.infinity] * table_size
    # small doubles of each point
    pt_multiples = []
    for pt in points:
        row = [curve.infinity]
        for _ in range((1 << window) - 1):
            row.append(row[-1] + pt)
        pt_multiples.append(row)
    for idx in range(1, table_size):
        acc = curve.infinity
        for j in range(npts):
            digit = (idx >> (j * window)) & ((1 << window) - 1)
            acc = acc + pt_multiples[j][digit]
        table[idx] = acc
    max_bits = max((k.bit_length() for k in scalars), default=1) or 1
    num_windows = (max_bits + window - 1) // window
    mask = (1 << window) - 1
    result = curve.infinity
    for w in range(num_windows - 1, -1, -1):
        for _ in range(window):
            result = result + result
        idx = 0
        for j, k in enumerate(scalars):
            idx |= ((k >> (w * window)) & mask) << (j * window)
        if idx:
            result = result + table[idx]
    return result
