"""Named curve instances used throughout the reproduction.

* ``P256``     — NIST P-256, the ECDSA curve covering 96% of signed TLDs
                 (paper §5); used by the ``production`` profile.
* ``SECP256K1``— included to exercise the generic group law on a second
                 256-bit curve in tests.
* ``TOY61``    — a 61-bit supersingular curve (``y^2 = x^3 + x`` over a
                 prime ``q = 3 mod 4``, so the order is exactly ``q + 1``),
                 used by the ``toy`` profile so that the full S_NOPE
                 statement is small enough to prove end-to-end with the
                 pure-Python Groth16 backend.  Its parameters were generated
                 once (Miller-Rabin search for ``q`` with ``(q+1)/4`` prime)
                 and are hard-coded; security of this curve is irrelevant —
                 it exists to exercise the identical code paths at small
                 scale.
* ``BN254_G1`` — the G1 group of the pairing curve used by Groth16.
"""

from .curve import Curve

#: NIST P-256 (secp256r1, RFC 6605's DNSSEC algorithm 13 curve).
P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    order=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

#: secp256k1, used only to cross-check the generic group law in tests.
SECP256K1 = Curve(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    gx=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    gy=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    order=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
)

#: 29-bit toy curve for the fully-proven end-to-end profile.  Same family
#: as TOY61 (supersingular y^2 = x^3 + x, q = 3 mod 4, #E = q + 1 = 4n);
#: small enough that a whole S_NOPE statement proves in pure Python.
TOY29 = Curve(
    name="toy29",
    p=536871091,
    a=1,
    b=0,
    gx=216997010,
    gy=116440326,
    order=134217773,
    cofactor=4,
)

#: 61-bit toy curve for the scaled-down end-to-end profile.
#: y^2 = x^3 + x over F_q with q = 3 (mod 4): supersingular, #E = q + 1 = 4n.
TOY61 = Curve(
    name="toy61",
    p=2305843009213703347,
    a=1,
    b=0,
    gx=836472976453214664,
    gy=1082201457823212795,
    order=576460752303425837,
    cofactor=4,
)

#: BN254 scalar-field modulus (the order of G1/G2; the R1CS field).
BN254_R = 21888242871839275222246405745257275088548364400416034343698204186575808495617

#: BN254 base-field modulus.
BN254_Q = 21888242871839275222246405745257275088696311157297823662689037894645226208583

#: The G1 group of BN254: y^2 = x^3 + 3 over F_q, generator (1, 2).
BN254_G1 = Curve(
    name="bn254-g1",
    p=BN254_Q,
    a=0,
    b=3,
    gx=1,
    gy=2,
    order=BN254_R,
)

#: Registry by name, e.g. for serialized key material.
CURVES = {c.name: c for c in (P256, SECP256K1, TOY29, TOY61, BN254_G1)}


def curve_by_name(name):
    """Look up a named curve; raises KeyError for unknown names."""
    return CURVES[name]
