"""Short-Weierstrass elliptic curves over prime fields.

A :class:`Curve` is ``y^2 = x^3 + a*x + b`` over a :class:`PrimeField`.
Points are exposed through the ergonomic :class:`Point` wrapper (supporting
``P + Q``, ``k * P``); performance-critical paths (scalar multiplication,
MSM in :mod:`repro.ec.msm`) use Jacobian-coordinate tuples of plain ints via
the module-level ``jac_*`` functions.

Infinity is represented as ``Point(curve, None, None)`` in affine form and
``(1, 1, 0)`` in Jacobian form.
"""

from ..errors import CurveError
from ..field.montgomery import MONT_MULS as _MONT_MULS
from ..field.montgomery import REDC_CALLS as _REDC_CALLS
from ..field.prime_field import PrimeField


# -- Jacobian-coordinate primitives (tuples of ints, no wrappers) -----------

JAC_INFINITY = (1, 1, 0)


def jac_is_infinity(pt):
    return pt[2] == 0


def jac_double(curve, pt):
    """Double a Jacobian point.  Standard dbl-2007-bl-style formulas."""
    p = curve.field.p
    X1, Y1, Z1 = pt
    if Z1 == 0 or Y1 == 0:
        return JAC_INFINITY
    XX = X1 * X1 % p
    YY = Y1 * Y1 % p
    YYYY = YY * YY % p
    ZZ = Z1 * Z1 % p
    S = 2 * ((X1 + YY) * (X1 + YY) - XX - YYYY) % p
    M = (3 * XX + curve.a * ZZ % p * ZZ) % p
    T = (M * M - 2 * S) % p
    Y3 = (M * (S - T) - 8 * YYYY) % p
    Z3 = ((Y1 + Z1) * (Y1 + Z1) - YY - ZZ) % p
    return (T, Y3, Z3)


def jac_add(curve, pt1, pt2):
    """Add two Jacobian points (general case, handles doubling/infinity)."""
    p = curve.field.p
    X1, Y1, Z1 = pt1
    X2, Y2, Z2 = pt2
    if Z1 == 0:
        return pt2
    if Z2 == 0:
        return pt1
    Z1Z1 = Z1 * Z1 % p
    Z2Z2 = Z2 * Z2 % p
    U1 = X1 * Z2Z2 % p
    U2 = X2 * Z1Z1 % p
    S1 = Y1 * Z2 % p * Z2Z2 % p
    S2 = Y2 * Z1 % p * Z1Z1 % p
    if U1 == U2:
        if S1 != S2:
            return JAC_INFINITY
        return jac_double(curve, pt1)
    H = (U2 - U1) % p
    I = 4 * H * H % p
    J = H * I % p
    r = 2 * (S2 - S1) % p
    V = U1 * I % p
    X3 = (r * r - J - 2 * V) % p
    Y3 = (r * (V - X3) - 2 * S1 * J) % p
    Z3 = ((Z1 + Z2) * (Z1 + Z2) - Z1Z1 - Z2Z2) % p * H % p
    return (X3, Y3, Z3)


def jac_add_affine(curve, pt1, pt2):
    """Mixed addition: Jacobian ``pt1`` plus affine ``pt2 = (x, y)``."""
    p = curve.field.p
    X1, Y1, Z1 = pt1
    if Z1 == 0:
        return (pt2[0], pt2[1], 1)
    x2, y2 = pt2
    Z1Z1 = Z1 * Z1 % p
    U2 = x2 * Z1Z1 % p
    S2 = y2 * Z1 % p * Z1Z1 % p
    if X1 == U2:
        if Y1 != S2:
            return JAC_INFINITY
        return jac_double(curve, pt1)
    H = (U2 - X1) % p
    HH = H * H % p
    I = 4 * HH % p
    J = H * I % p
    r = 2 * (S2 - Y1) % p
    V = X1 * I % p
    X3 = (r * r - J - 2 * V) % p
    Y3 = (r * (V - X3) - 2 * Y1 * J) % p
    Z3 = ((Z1 + H) * (Z1 + H) - Z1Z1 - HH) % p
    return (X3, Y3, Z3)


def jac_neg(curve, pt):
    return (pt[0], (-pt[1]) % curve.field.p, pt[2])


def jac_to_affine(curve, pt):
    """Convert Jacobian -> affine tuple, or None for infinity."""
    X, Y, Z = pt
    if Z == 0:
        return None
    p = curve.field.p
    zinv = pow(Z, -1, p)
    zinv2 = zinv * zinv % p
    return (X * zinv2 % p, Y * zinv2 % p * zinv % p)


def jac_mul(curve, pt, k, window=4):
    """Scalar multiplication of a Jacobian point (signed fixed-window ladder).

    ``k`` is recoded into signed ``window``-bit digits in
    ``[-(2^(w-1) - 1), 2^(w-1)]`` (wNAF-style, carry folded upward), so the
    table only stores the ``2^(w-1)`` positive multiples — negative digits
    add the negated point, one field negation.  Versus double-and-add this
    trades ``~bits/2`` conditional adds for ``~bits/w`` plus the table
    setup, a ~25% saving on a 256-bit scalar.
    """
    k %= curve.order
    if k == 0 or jac_is_infinity(pt):
        return JAC_INFINITY
    if k.bit_length() <= window + 1:
        # tiny scalar: the table setup would dominate
        result = JAC_INFINITY
        for bit in bin(k)[2:]:
            result = jac_double(curve, result)
            if bit == "1":
                result = jac_add(curve, result, pt)
        return result
    half = 1 << (window - 1)
    full = 1 << window
    mask = full - 1
    digits = []  # least significant first
    n = k
    while n:
        d = n & mask
        n >>= window
        if d > half:
            d -= full
            n += 1
        digits.append(d)
    multiples = [pt]  # multiples[i] = (i + 1) * pt, i + 1 up to 2^(w-1)
    for _ in range(half - 1):
        multiples.append(jac_add(curve, multiples[-1], pt))
    p = curve.field.p
    result = JAC_INFINITY
    for d in reversed(digits):
        for _ in range(window):
            result = jac_double(curve, result)
        if d > 0:
            result = jac_add(curve, result, multiples[d - 1])
        elif d < 0:
            x, y, z = multiples[-d - 1]
            result = jac_add(curve, result, (x, (-y) % p, z))
    return result


# -- Montgomery-domain Jacobian kernels --------------------------------------
#
# Mirrors of the canonical formulas above with every field product reduced
# by an inlined REDC (multiply-mask-shift, no division) instead of `% p`.
# Coordinates live in Montgomery form (x -> x*R mod p); conversion happens
# once at MSM kernel entry/exit (`JacobianGroup.enter_kernel`/`exit_kernel`),
# never inside these functions.  Every intermediate is normalized to
# [0, p), so equality checks (U1 == U2, ...) and the formula control flow
# are step-for-step identical to the canonical kernels — converting the
# result back yields the exact same integer tuple, which is what the
# byte-identical parity suite asserts.
#
# REDC validity: operands stay < 2p before any product, so |T| < 4p^2 <
# R*p with the SLACK_BITS headroom in R; differences fed to REDC stay
# above -R*p, which the signed normalization handles.


def jac_double_mont(ctx, a_m, pt):  # domain: kernel(mont)
    """`jac_double` on Montgomery-form coordinates (`a_m` = to_mont(a))."""
    p = ctx.p
    n0 = ctx.n_prime
    mk = ctx.mask
    kk = ctx.k
    X1, Y1, Z1 = pt
    if Z1 == 0 or Y1 == 0:
        return JAC_INFINITY
    t = X1 * X1
    u = (t + ((t * n0) & mk) * p) >> kk
    XX = u - p if u >= p else u
    t = Y1 * Y1
    u = (t + ((t * n0) & mk) * p) >> kk
    YY = u - p if u >= p else u
    t = YY * YY
    u = (t + ((t * n0) & mk) * p) >> kk
    YYYY = u - p if u >= p else u
    t = Z1 * Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    ZZ = u - p if u >= p else u
    t = (X1 + YY) * (X1 + YY)
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    S = 2 * (u - XX - YYYY) % p
    t = a_m * ZZ
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    t = u * ZZ
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    M = (3 * XX + u) % p
    t = M * M
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    T = (u - 2 * S) % p
    t = M * (S - T)
    u = (t + ((t * n0) & mk) * p) >> kk
    if u < 0:
        u += p
    elif u >= p:
        u -= p
    Y3 = (u - 8 * YYYY) % p
    t = (Y1 + Z1) * (Y1 + Z1)
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    Z3 = (u - YY - ZZ) % p
    _MONT_MULS.inc(10)
    _REDC_CALLS.inc(10)
    return (T, Y3, Z3)


def jac_add_mont(ctx, a_m, pt1, pt2):  # domain: kernel(mont)
    """`jac_add` on Montgomery-form coordinates."""
    p = ctx.p
    n0 = ctx.n_prime
    mk = ctx.mask
    kk = ctx.k
    X1, Y1, Z1 = pt1
    X2, Y2, Z2 = pt2
    if Z1 == 0:
        return pt2
    if Z2 == 0:
        return pt1
    t = Z1 * Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    Z1Z1 = u - p if u >= p else u
    t = Z2 * Z2
    u = (t + ((t * n0) & mk) * p) >> kk
    Z2Z2 = u - p if u >= p else u
    t = X1 * Z2Z2
    u = (t + ((t * n0) & mk) * p) >> kk
    U1 = u - p if u >= p else u
    t = X2 * Z1Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    U2 = u - p if u >= p else u
    t = Y1 * Z2
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    t = u * Z2Z2
    u = (t + ((t * n0) & mk) * p) >> kk
    S1 = u - p if u >= p else u
    t = Y2 * Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    t = u * Z1Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    S2 = u - p if u >= p else u
    if U1 == U2:
        if S1 != S2:
            return JAC_INFINITY
        return jac_double_mont(ctx, a_m, pt1)
    H = (U2 - U1) % p
    t = H * H
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    I = 4 * u % p
    t = H * I
    u = (t + ((t * n0) & mk) * p) >> kk
    J = u - p if u >= p else u
    r = 2 * (S2 - S1) % p
    t = U1 * I
    u = (t + ((t * n0) & mk) * p) >> kk
    V = u - p if u >= p else u
    t = r * r
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    X3 = (u - J - 2 * V) % p
    t = r * (V - X3)
    u = (t + ((t * n0) & mk) * p) >> kk
    if u < 0:
        u += p
    elif u >= p:
        u -= p
    t = S1 * J
    w = (t + ((t * n0) & mk) * p) >> kk
    w = w - p if w >= p else w
    Y3 = (u - 2 * w) % p
    t = (Z1 + Z2) * (Z1 + Z2)
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    t = (u - Z1Z1 - Z2Z2) % p * H
    u = (t + ((t * n0) & mk) * p) >> kk
    Z3 = u - p if u >= p else u
    _MONT_MULS.inc(16)
    _REDC_CALLS.inc(16)
    return (X3, Y3, Z3)


def jac_add_affine_mont(ctx, a_m, pt1, pt2):  # domain: kernel(mont)
    """`jac_add_affine` on Montgomery-form coordinates.

    ``pt2`` is an affine Montgomery-form pair; an infinity accumulator
    lifts it with ``Z = R mod p`` (the Montgomery form of 1).
    """
    p = ctx.p
    n0 = ctx.n_prime
    mk = ctx.mask
    kk = ctx.k
    X1, Y1, Z1 = pt1
    if Z1 == 0:
        return (pt2[0], pt2[1], ctx.r1)
    x2, y2 = pt2
    t = Z1 * Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    Z1Z1 = u - p if u >= p else u
    t = x2 * Z1Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    U2 = u - p if u >= p else u
    t = y2 * Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    t = u * Z1Z1
    u = (t + ((t * n0) & mk) * p) >> kk
    S2 = u - p if u >= p else u
    if X1 == U2:
        if Y1 != S2:
            return JAC_INFINITY
        return jac_double_mont(ctx, a_m, pt1)
    H = (U2 - X1) % p
    t = H * H
    u = (t + ((t * n0) & mk) * p) >> kk
    HH = u - p if u >= p else u
    I = 4 * HH % p
    t = H * I
    u = (t + ((t * n0) & mk) * p) >> kk
    J = u - p if u >= p else u
    r = 2 * (S2 - Y1) % p
    t = X1 * I
    u = (t + ((t * n0) & mk) * p) >> kk
    V = u - p if u >= p else u
    t = r * r
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    X3 = (u - J - 2 * V) % p
    t = r * (V - X3)
    u = (t + ((t * n0) & mk) * p) >> kk
    if u < 0:
        u += p
    elif u >= p:
        u -= p
    t = Y1 * J
    w = (t + ((t * n0) & mk) * p) >> kk
    w = w - p if w >= p else w
    Y3 = (u - 2 * w) % p
    t = (Z1 + H) * (Z1 + H)
    u = (t + ((t * n0) & mk) * p) >> kk
    u = u - p if u >= p else u
    Z3 = (u - Z1Z1 - HH) % p
    _MONT_MULS.inc(11)
    _REDC_CALLS.inc(11)
    return (X3, Y3, Z3)


def jac_to_mont(ctx, pt):
    """Canonical Jacobian tuple -> Montgomery form (infinity unchanged)."""
    if pt[2] == 0:
        return JAC_INFINITY
    return (ctx.to_mont(pt[0]), ctx.to_mont(pt[1]), ctx.to_mont(pt[2]))


def jac_from_mont(ctx, pt):
    """Montgomery-form Jacobian tuple -> canonical (infinity unchanged)."""
    if pt[2] == 0:
        return JAC_INFINITY
    return (ctx.from_mont(pt[0]), ctx.from_mont(pt[1]), ctx.from_mont(pt[2]))


class Curve:
    """A short-Weierstrass curve ``y^2 = x^3 + a x + b`` over ``F_p``."""

    def __init__(self, name, p, a, b, gx, gy, order, cofactor=1):
        self.name = name
        self.field = PrimeField(p)
        self.a = a % p
        self.b = b % p
        self.order = order
        self.scalar_field = PrimeField(order)
        self.cofactor = cofactor
        if not self.contains(gx, gy):
            raise CurveError("generator not on curve %s" % name)
        self.generator = Point(self, gx, gy)

    def __repr__(self):
        return "Curve(%s)" % self.name

    def __eq__(self, other):
        return (
            isinstance(other, Curve)
            and other.field.p == self.field.p
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self):
        return hash((self.field.p, self.a, self.b))

    def contains(self, x, y):
        """Whether affine ``(x, y)`` satisfies the curve equation."""
        p = self.field.p
        return (y * y - (x * x % p * x + self.a * x + self.b)) % p == 0

    @property
    def infinity(self):
        return Point(self, None, None)

    def point(self, x, y):
        """Construct a validated affine point."""
        if not self.contains(x, y):
            raise CurveError("point not on curve %s" % self.name)
        return Point(self, x % self.field.p, y % self.field.p)

    def lift_x(self, x, y_parity=0):
        """Decompress: find the point with given x and y parity bit."""
        p = self.field.p
        rhs = (pow(x, 3, p) + self.a * x + self.b) % p
        y = self.field.sqrt(rhs)
        if y % 2 != y_parity:
            y = p - y
        return self.point(x, y)

    def random_point(self):
        """A uniformly random point in the prime-order subgroup."""
        k = 0
        while k == 0:
            k = self.scalar_field.rand()
        return k * self.generator

    def hash_to_scalar(self, data):
        """Map bytes to a scalar (for toy signature schemes and tests)."""
        import hashlib

        h = hashlib.sha256(data).digest()
        return int.from_bytes(h, "big") % self.order


class Point:
    """An affine point with operator overloading.  Immutable."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve, x, y):
        self.curve = curve
        self.x = x
        self.y = y

    @property
    def is_infinity(self):
        return self.x is None

    def __eq__(self, other):
        return (
            isinstance(other, Point)
            and self.curve == other.curve
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self):
        return hash((self.curve.field.p, self.x, self.y))

    def __repr__(self):
        if self.is_infinity:
            return "Point(%s, INF)" % self.curve.name
        return "Point(%s, 0x%x, 0x%x)" % (self.curve.name, self.x, self.y)

    def to_jacobian(self):
        if self.is_infinity:
            return JAC_INFINITY
        return (self.x, self.y, 1)

    @staticmethod
    def from_jacobian(curve, jac):
        aff = jac_to_affine(curve, jac)
        if aff is None:
            return curve.infinity
        return Point(curve, aff[0], aff[1])

    def __neg__(self):
        if self.is_infinity:
            return self
        return Point(self.curve, self.x, (-self.y) % self.curve.field.p)

    def __add__(self, other):
        if not isinstance(other, Point) or other.curve != self.curve:
            raise CurveError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.field.p
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return self.curve.infinity
            lam = (3 * self.x * self.x + self.curve.a) * pow(2 * self.y, -1, p) % p
        else:
            lam = (other.y - self.y) * pow(other.x - self.x, -1, p) % p
        x3 = (lam * lam - self.x - other.x) % p
        y3 = (lam * (self.x - x3) - self.y) % p
        return Point(self.curve, x3, y3)

    def __sub__(self, other):
        return self + (-other)

    def __rmul__(self, k):
        if not isinstance(k, int):
            return NotImplemented
        if self.is_infinity:
            return self
        jac = jac_mul(self.curve, self.to_jacobian(), k)
        return Point.from_jacobian(self.curve, jac)

    __mul__ = __rmul__

    def double(self):
        return self + self

    # -- SEC1-style serialization --------------------------------------------

    def encode(self, compressed=True):
        """SEC1 encoding: 02/03 || x (compressed) or 04 || x || y."""
        if self.is_infinity:
            return b"\x00"
        size = self.curve.field.byte_length
        xb = self.x.to_bytes(size, "big")
        if compressed:
            return bytes([2 + (self.y & 1)]) + xb
        return b"\x04" + xb + self.y.to_bytes(size, "big")

    @staticmethod
    def decode(curve, data):
        if data == b"\x00":
            return curve.infinity
        size = curve.field.byte_length
        tag = data[0]
        if tag == 4:
            if len(data) != 1 + 2 * size:
                raise CurveError("bad uncompressed point length")
            x = int.from_bytes(data[1 : 1 + size], "big")
            y = int.from_bytes(data[1 + size :], "big")
            return curve.point(x, y)
        if tag in (2, 3):
            if len(data) != 1 + size:
                raise CurveError("bad compressed point length")
            x = int.from_bytes(data[1:], "big")
            return curve.lift_x(x, tag - 2)
        raise CurveError("bad point encoding tag 0x%02x" % tag)
