"""Elliptic-curve groups, named curves, MSM, and scalar decomposition."""

from .curve import Curve, Point
from .curves import BN254_G1, BN254_Q, BN254_R, CURVES, P256, SECP256K1, TOY29, TOY61, curve_by_name
from .glv import decompose, half_width_bound
from .msm import FixedBaseTable, msm, msm_jacobian, straus

__all__ = [
    "Curve",
    "Point",
    "P256",
    "SECP256K1",
    "TOY29",
    "TOY61",
    "BN254_G1",
    "BN254_Q",
    "BN254_R",
    "CURVES",
    "curve_by_name",
    "msm",
    "msm_jacobian",
    "straus",
    "decompose",
    "half_width_bound",
]
