"""A non-cryptographic stand-in backend for fast protocol tests.

The real Groth16 backend proves toy statements in tens of seconds of pure
Python; protocol-level tests that would otherwise re-prove dozens of times
use this backend instead.  It checks R1CS satisfiability *for real* (so an
unsatisfied statement still fails to "prove") and emits a MAC-like
attestation binding the statement structure and public inputs.

This is explicitly NOT a proof system: anyone holding the setup token can
forge.  Production code paths select the backend via
:mod:`repro.profiles`; the slow tests and the quickstart example run the
real Groth16 end-to-end.
"""

import hashlib
import hmac
import secrets

from ..errors import ProofError, ProvingError

SIM_PROOF_SIZE = 128


class SimulatedKey:
    """Plays the role of both proving and verifying key."""

    def __init__(self, structure_hash, token):
        self.structure_hash = structure_hash
        self.token = token


class SimulatedProof:
    __slots__ = ("digest",)

    def __init__(self, digest):
        self.digest = digest


def sim_setup(structure):
    """'Trusted setup': bind a random token to the statement structure."""
    return SimulatedKey(structure.structure_hash(), secrets.token_bytes(16))


def _mac(key, public_inputs):
    h = hashlib.sha256()
    h.update(key.token)
    h.update(key.structure_hash.encode())
    for x in public_inputs:
        h.update(b"%d," % x)
    # pad to the real proof size so byte-level protocol code is exercised
    digest = h.digest()
    return (digest * 4)[:SIM_PROOF_SIZE]


def sim_prove(key, system):
    """Check satisfiability and emit the attestation."""
    if system.structure_hash() != key.structure_hash:
        raise ProvingError("simulated key does not match this statement")
    system.check_satisfied()
    return SimulatedProof(_mac(key, system.public_inputs()))


def sim_verify(key, proof, public_inputs):
    if not hmac.compare_digest(proof.digest, _mac(key, public_inputs)):
        raise ProofError("simulated proof rejected")
