"""Groth16 trusted setup (and the forgery that motivates trusting it).

The setup samples the trapdoor (tau, alpha, beta, gamma, delta), evaluates
every variable's QAP polynomials at tau via Lagrange coefficients (O(nnz)
field work, no FFT needed), and exponentiates with fixed-base tables.

``forge_with_toxic_waste`` constructs a verifying proof for an arbitrary
public input *without any witness*, given the trapdoor — the reason the
paper notes the setup "must be executed by a trusted party" and compares it
to DNSSEC's root key ceremonies (§2.3).
"""

import secrets

from ..ec.curve import Point
from ..ec.curves import BN254_G1, BN254_R
from ..engine import get_engine
from ..errors import ProvingError
from ..pairing.bn254 import G2Point, G2_GENERATOR
from ..telemetry.trace import span as _span
from .fft import domain_root
from .keys import ProvingKey, ToxicWaste, VerifyingKey

R = BN254_R
G1 = BN254_G1.generator
G2 = G2_GENERATOR


def _next_pow2(n):
    size = 1
    while size < n:
        size <<= 1
    return size


def evaluate_qap_at(structure, tau):
    """Evaluate every variable's (A_i, B_i, C_i) QAP polynomials at tau.

    Uses the Lagrange-basis identity  L_j(tau) = Z(tau) * omega^j /
    (d * (tau - omega^j))  with one batched inversion.  Returns
    (a_vals, b_vals, c_vals, domain_size, z_tau).
    """
    m = structure.constraint_count
    num_vars = structure.num_variables
    d = _next_pow2(max(m, 2))
    omega = domain_root(d)
    z_tau = (pow(tau, d, R) - 1) % R
    if z_tau == 0:
        raise ProvingError("tau landed in the domain; resample")
    # Lagrange coefficients at tau for each constraint index
    omegas = []
    w = 1
    for _ in range(d):
        omegas.append(w)
        w = w * omega % R
    denoms = [(tau - w) % R for w in omegas[:m]]
    # batch invert
    prefix = [1] * (m + 1)
    for i in range(m):
        prefix[i + 1] = prefix[i] * denoms[i] % R
    inv_all = pow(prefix[m], -1, R)
    inv_denoms = [0] * m
    for i in range(m - 1, -1, -1):
        inv_denoms[i] = prefix[i] * inv_all % R
        inv_all = inv_all * denoms[i] % R
    d_inv = pow(d, -1, R)
    lag = [z_tau * omegas[j] % R * inv_denoms[j] % R * d_inv % R for j in range(m)]
    a_vals = [0] * num_vars
    b_vals = [0] * num_vars
    c_vals = [0] * num_vars
    for j, (a, b, c, _) in enumerate(structure.constraints):
        lj = lag[j]
        for wire, coeff in a.terms.items():
            a_vals[wire] = (a_vals[wire] + coeff * lj) % R
        for wire, coeff in b.terms.items():
            b_vals[wire] = (b_vals[wire] + coeff * lj) % R
        for wire, coeff in c.terms.items():
            c_vals[wire] = (c_vals[wire] + coeff * lj) % R
    return a_vals, b_vals, c_vals, d, z_tau


def setup(structure, rng=None, engine=None):
    """Run the trusted setup for an R1CS structure.

    Returns (proving_key, verifying_key, toxic_waste).  Callers other than
    tests should discard the toxic waste immediately.  The engine's
    fixed-base tables for the two generators are cached process-wide, so
    repeated setups skip the table precomputation.
    """
    if structure.counting_only:
        raise ProvingError("cannot set up a counting-only system")
    eng = get_engine(engine)
    with _span(
        "groth16.setup",
        constraints=structure.constraint_count,
        variables=structure.num_variables,
    ):
        return _setup(structure, eng, rng)


def _setup(structure, eng, rng):
    rand = rng or (lambda: secrets.randbelow(R - 1) + 1)
    tau, alpha, beta, gamma, delta = (rand() for _ in range(5))
    with _span("setup.qap"):
        a_vals, b_vals, c_vals, d, z_tau = evaluate_qap_at(structure, tau)
    num_vars = structure.num_variables
    num_public = structure.num_public
    gamma_inv = pow(gamma, -1, R)
    delta_inv = pow(delta, -1, R)

    g1_table = eng.fixed_base_table(G1, BN254_G1.infinity, R.bit_length())
    g2_table = eng.fixed_base_table(G2, G2Point.infinity(), R.bit_length())

    with _span("setup.queries", variables=num_vars, domain=d):
        a_query = [g1_table.mul(a_vals[i]) for i in range(num_vars)]
        b_g1_query = [g1_table.mul(b_vals[i]) for i in range(num_vars)]
        b_g2_query = [g2_table.mul(b_vals[i]) for i in range(num_vars)]
        ic = []
        l_query = []
        for i in range(num_vars):
            combined = (beta * a_vals[i] + alpha * b_vals[i] + c_vals[i]) % R
            if i <= num_public:
                ic.append(g1_table.mul(combined * gamma_inv % R))
            else:
                l_query.append(g1_table.mul(combined * delta_inv % R))
        # h query: tau^i * Z(tau) / delta for i in 0..d-2
        h_query = []
        factor = z_tau * delta_inv % R
        power = factor
        for _ in range(d - 1):
            h_query.append(g1_table.mul(power))
            power = power * tau % R
    vk = VerifyingKey(
        alpha_g1=g1_table.mul(alpha),
        beta_g2=g2_table.mul(beta),
        gamma_g2=g2_table.mul(gamma),
        delta_g2=g2_table.mul(delta),
        ic=ic,
    )
    pk = ProvingKey(
        alpha_g1=vk.alpha_g1,
        beta_g1=g1_table.mul(beta),
        beta_g2=vk.beta_g2,
        delta_g1=g1_table.mul(delta),
        delta_g2=vk.delta_g2,
        a_query=a_query,
        b_g1_query=b_g1_query,
        b_g2_query=b_g2_query,
        h_query=h_query,
        l_query=l_query,
        vk=vk,
    )
    return pk, vk, ToxicWaste(tau, alpha, beta, gamma, delta)


def forge_with_toxic_waste(toxic, structure, public_inputs):
    """Produce a verifying proof with NO witness, using the trapdoor.

    Demonstrates knowledge-soundness collapse when toxic waste leaks: the
    exponent relation e(A,B) = e(alpha,beta) e(I,gamma) e(C,delta) is
    solved directly in the scalar field.
    """
    from .keys import Proof

    a_vals, b_vals, c_vals, _, _ = evaluate_qap_at(structure, toxic.tau)
    x = [1] + [v % R for v in public_inputs]
    if len(x) != structure.num_public + 1:
        raise ProvingError("public input length mismatch")
    s_exp = 0
    for i, xi in enumerate(x):
        s_exp = (
            s_exp
            + xi * (toxic.beta * a_vals[i] + toxic.alpha * b_vals[i] + c_vals[i])
        ) % R
    a_scalar = secrets.randbelow(R - 1) + 1
    b_scalar = secrets.randbelow(R - 1) + 1
    c_scalar = (
        (a_scalar * b_scalar - toxic.alpha * toxic.beta - s_exp)
        * pow(toxic.delta, -1, R)
    ) % R
    return Proof(a_scalar * G1, b_scalar * G2, c_scalar * G1)
