"""Groth16 zkSNARK over BN254: setup, prove, verify, 128-byte proofs."""

from .fft import coset_fft, coset_ifft, domain_root, fft, ifft
from .keys import Proof, ProvingKey, ToxicWaste, VerifyingKey
from .prove import compute_h_coefficients, evaluate_constraints, prove
from .rerandomize import proof_in_groups, rerandomize
from .serialize import (
    PROOF_SIZE,
    g1_from_bytes,
    g1_to_bytes,
    g2_from_bytes,
    g2_to_bytes,
    proof_from_bytes,
    proof_to_bytes,
)
from .setup import evaluate_qap_at, forge_with_toxic_waste, setup
from .simulation import (
    SIM_PROOF_SIZE,
    SimulatedKey,
    SimulatedProof,
    sim_prove,
    sim_setup,
    sim_verify,
)
from .verify import (
    BatchVerificationError,
    PreparedVerifyingKey,
    batch_coefficients,
    batch_is_valid,
    is_valid,
    prepare,
    verify,
    verify_batch,
)

__all__ = [
    "setup",
    "prove",
    "verify",
    "verify_batch",
    "batch_is_valid",
    "batch_coefficients",
    "BatchVerificationError",
    "is_valid",
    "prepare",
    "PreparedVerifyingKey",
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "ToxicWaste",
    "forge_with_toxic_waste",
    "evaluate_qap_at",
    "evaluate_constraints",
    "compute_h_coefficients",
    "rerandomize",
    "proof_in_groups",
    "proof_to_bytes",
    "proof_from_bytes",
    "g1_to_bytes",
    "g1_from_bytes",
    "g2_to_bytes",
    "g2_from_bytes",
    "PROOF_SIZE",
    "fft",
    "ifft",
    "coset_fft",
    "coset_ifft",
    "domain_root",
    "sim_setup",
    "sim_prove",
    "sim_verify",
    "SimulatedKey",
    "SimulatedProof",
    "SIM_PROOF_SIZE",
]
