"""Groth16 key material and proof containers."""


class Proof:
    """A Groth16 proof: (A in G1, B in G2, C in G1).  128 bytes serialized."""

    __slots__ = ("a", "b", "c")

    def __init__(self, a, b, c):
        self.a = a
        self.b = b
        self.c = c

    def __eq__(self, other):
        return (
            isinstance(other, Proof)
            and self.a == other.a
            and self.b == other.b
            and self.c == other.c
        )

    def __repr__(self):
        return "Proof(Groth16)"


class VerifyingKey:
    """What a verifier needs: alpha/beta/gamma/delta and the IC points."""

    def __init__(self, alpha_g1, beta_g2, gamma_g2, delta_g2, ic):
        self.alpha_g1 = alpha_g1
        self.beta_g2 = beta_g2
        self.gamma_g2 = gamma_g2
        self.delta_g2 = delta_g2
        self.ic = ic  # list of G1 points, one per (1 + public input)

    @property
    def num_public(self):
        return len(self.ic) - 1


class ProvingKey:
    """The prover's CRS slice."""

    def __init__(
        self,
        alpha_g1,
        beta_g1,
        beta_g2,
        delta_g1,
        delta_g2,
        a_query,
        b_g1_query,
        b_g2_query,
        h_query,
        l_query,
        vk,
    ):
        self.alpha_g1 = alpha_g1
        self.beta_g1 = beta_g1
        self.beta_g2 = beta_g2
        self.delta_g1 = delta_g1
        self.delta_g2 = delta_g2
        self.a_query = a_query  # [A_i(tau)]_1 per variable
        self.b_g1_query = b_g1_query  # [B_i(tau)]_1
        self.b_g2_query = b_g2_query  # [B_i(tau)]_2
        self.h_query = h_query  # [tau^i t(tau)/delta]_1
        self.l_query = l_query  # [(beta A_i + alpha B_i + C_i)/delta]_1, witness wires
        self.vk = vk


class ToxicWaste:
    """The trusted-setup trapdoor.  MUST be destroyed after setup.

    Retained only by tests and the forgery demonstration
    (:func:`repro.groth16.setup.forge_with_toxic_waste`), which shows why.
    """

    def __init__(self, tau, alpha, beta, gamma, delta):
        self.tau = tau
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.delta = delta
