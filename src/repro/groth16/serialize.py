"""128-byte proof serialization (the size the paper reports in Fig. 7).

Compressed encodings, bellman/zcash style: a G1 point is its 32-byte
big-endian x with flag bits in the top of the first byte (BN254's modulus
is 254 bits, so two bits are free); a G2 point is the 64-byte x in Fq2
(c1 then c0).  A proof is A (32) || B (64) || C (32) = 128 bytes.

These functions are the **body codec** behind ``KIND_GROTH16`` in the
:mod:`repro.wire` kind registry; everything outside ``repro.wire`` (and
this package) must go through the registry rather than calling them
directly — the ``wire-bypass`` hygiene lint rule enforces that boundary.
"""

from ..ec.curves import BN254_G1
from ..errors import EncodingError
from ..field.extension import BN254_P, Fq2
from ..pairing.bn254 import B2, G2Point
from .keys import Proof

#: flag bit: y is the lexicographically larger root
_FLAG_Y_SIGN = 0x80
#: flag bit: point at infinity
_FLAG_INFINITY = 0x40

PROOF_SIZE = 128


def g1_to_bytes(pt):
    if pt.is_infinity:
        return bytes([_FLAG_INFINITY]) + b"\x00" * 31
    data = bytearray(pt.x.to_bytes(32, "big"))
    if pt.y > BN254_P - pt.y:
        data[0] |= _FLAG_Y_SIGN
    return bytes(data)


def g1_from_bytes(data):
    if len(data) != 32:
        raise EncodingError("G1 encoding must be 32 bytes")
    flags = data[0] & 0xC0
    if flags & _FLAG_INFINITY:
        if any(data[1:]) or data[0] != _FLAG_INFINITY:
            raise EncodingError("malformed G1 infinity encoding")
        return BN254_G1.infinity
    body = bytes([data[0] & 0x3F]) + data[1:]
    x = int.from_bytes(body, "big")
    if x >= BN254_P:
        raise EncodingError("G1 x out of range")
    try:
        pt = BN254_G1.lift_x(x, 0)
    except Exception as exc:
        raise EncodingError("G1 x not on curve") from exc
    y_big = max(pt.y, BN254_P - pt.y)
    y_small = min(pt.y, BN254_P - pt.y)
    y = y_big if flags & _FLAG_Y_SIGN else y_small
    return BN254_G1.point(x, y)


def _fq2_sqrt(a):
    """Square root in Fq2 via the norm map; raises EncodingError if none."""
    if a.is_zero():
        return Fq2.zero()
    # complex method: norm = c0^2 + c1^2 must be a QR in Fq
    p = BN254_P
    norm = (a.c0 * a.c0 + a.c1 * a.c1) % p
    from ..field.prime_field import PrimeField

    fq = PrimeField(p)
    try:
        n_sqrt = fq.sqrt(norm)
    except Exception as exc:
        raise EncodingError("Fq2 element is not a square") from exc
    for sign in (1, -1):
        half = (a.c0 + sign * n_sqrt) * pow(2, -1, p) % p
        try:
            x0 = fq.sqrt(half)
        except Exception:
            continue
        if x0 == 0:
            continue
        x1 = a.c1 * pow(2 * x0, -1, p) % p
        cand = Fq2(x0, x1)
        if cand.square() == a:
            return cand
    raise EncodingError("Fq2 element is not a square")


def _fq2_is_larger(y):
    """Lexicographic comparison for the sign flag: (c1, c0) ordering."""
    neg = -y
    return (y.c1, y.c0) > (neg.c1, neg.c0)


def g2_to_bytes(pt):
    if pt.is_infinity:
        return bytes([_FLAG_INFINITY]) + b"\x00" * 63
    data = bytearray(
        pt.x.c1.to_bytes(32, "big") + pt.x.c0.to_bytes(32, "big")
    )
    if _fq2_is_larger(pt.y):
        data[0] |= _FLAG_Y_SIGN
    return bytes(data)


def g2_from_bytes(data):
    if len(data) != 64:
        raise EncodingError("G2 encoding must be 64 bytes")
    flags = data[0] & 0xC0
    if flags & _FLAG_INFINITY:
        if any(data[1:]) or data[0] != _FLAG_INFINITY:
            raise EncodingError("malformed G2 infinity encoding")
        return G2Point.infinity()
    c1 = int.from_bytes(bytes([data[0] & 0x3F]) + data[1:32], "big")
    c0 = int.from_bytes(data[32:], "big")
    if c0 >= BN254_P or c1 >= BN254_P:
        raise EncodingError("G2 x out of range")
    x = Fq2(c0, c1)
    y = _fq2_sqrt(x.square() * x + B2)
    if _fq2_is_larger(y) != bool(flags & _FLAG_Y_SIGN):
        y = -y
    pt = G2Point(x, y)
    if not pt.in_subgroup():
        raise EncodingError("G2 point not in the r-order subgroup")
    return pt


def proof_to_bytes(proof):
    """Serialize to the 128-byte wire format."""
    return g1_to_bytes(proof.a) + g2_to_bytes(proof.b) + g1_to_bytes(proof.c)


def proof_from_bytes(data):
    if len(data) != PROOF_SIZE:
        raise EncodingError("proof must be exactly %d bytes" % PROOF_SIZE)
    return Proof(
        g1_from_bytes(data[:32]),
        g2_from_bytes(data[32:96]),
        g1_from_bytes(data[96:]),
    )
