"""Proof malleability: re-randomization and the checks around it.

Groth16 proofs are malleable: anyone can transform a valid (A, B, C) into a
different-looking valid proof *for the same statement and public inputs*
(weak simulation extractability tolerates exactly this; §3.2).  NOPE's
protocol accounts for it — a mauled proof still binds the same T, N, TS, so
a compromised CA reusing a proof across certificates is caught by the CT
timestamp consistency check, not by proof uniqueness.

:func:`rerandomize` implements the standard transformation

    A' = t * A,    B' = t^{-1} * B + s * delta,    C' = C + (t*s) * A'

(with A' folded in), which the test suite uses to demonstrate both the
malleability and the impossibility of *changing the public inputs* this
way.
"""

import secrets

from ..ec.curves import BN254_R
from .keys import Proof

R = BN254_R


def rerandomize(vk, proof, t=None, s=None):
    """Produce a distinct, equally valid proof of the same statement."""
    t = t if t is not None else secrets.randbelow(R - 2) + 2
    s = s if s is not None else secrets.randbelow(R - 1) + 1
    t_inv = pow(t, -1, R)
    a2 = t * proof.a
    b2 = t_inv * proof.b + s * vk.delta_g2
    # e(A', B') = e(A, B) * e(A, delta)^(t s); compensate in C
    c2 = proof.c + (t * s % R) * proof.a
    return Proof(a2, b2, c2)


def proof_in_groups(proof):
    """Subgroup/curve membership checks for a deserialized proof."""
    a_ok = (not proof.a.is_infinity) and proof.a.curve.contains(
        proof.a.x, proof.a.y
    )
    c_ok = proof.c.is_infinity or proof.c.curve.contains(proof.c.x, proof.c.y)
    b_ok = (not proof.b.is_infinity) and proof.b.in_subgroup()
    return a_ok and b_ok and c_ok
