"""Radix-2 FFT (NTT) over the BN254 scalar field — uncached reference.

The Groth16 prover divides A(X)*B(X) - C(X) by the vanishing polynomial of
the evaluation domain; with a power-of-two domain (BN254's Fr has 2-adicity
28) this is three FFTs and a coset trick.

The hot path uses the cached-twiddle variants in :mod:`repro.engine.fft`
(same transforms, memoized domain tables); the implementations here are the
uncached reference the engine's property tests compare against.  Domain
constants and ``domain_root`` are shared with the engine so the two can
never diverge.
"""

from ..ec.curves import BN254_R
from ..engine.fft import (  # noqa: F401  (re-exported compatibility names)
    GENERATOR,
    ROOT_OF_UNITY,
    TWO_ADICITY,
    domain_root,
)
from ..errors import ProvingError

R = BN254_R


def fft(values, omega):
    """In-place-style iterative NTT; returns evaluations at omega^i."""
    n = len(values)
    if n & (n - 1):
        raise ProvingError("fft length must be a power of two")
    a = list(values)
    # bit-reversal permutation
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            a[i], a[j] = a[j], a[i]
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, R)
        for start in range(0, n, length):
            w = 1
            half = length // 2
            for k in range(start, start + half):
                u = a[k]
                v = a[k + half] * w % R
                a[k] = (u + v) % R
                a[k + half] = (u - v) % R
                w = w * w_len % R
        length <<= 1
    return a


def ifft(values, omega):
    """Inverse NTT."""
    n = len(values)
    inv_n = pow(n, -1, R)
    out = fft(values, pow(omega, -1, R))
    return [x * inv_n % R for x in out]


def coset_fft(coeffs, omega, shift=GENERATOR):
    """Evaluate the polynomial on the coset shift * <omega>."""
    shifted = []
    power = 1
    for c in coeffs:
        shifted.append(c * power % R)
        power = power * shift % R
    return fft(shifted, omega)


def coset_ifft(values, omega, shift=GENERATOR):
    """Interpolate from coset evaluations back to coefficients."""
    coeffs = ifft(values, omega)
    inv_shift = pow(shift, -1, R)
    out = []
    power = 1
    for c in coeffs:
        out.append(c * power % R)
        power = power * inv_shift % R
    return out
