"""Groth16 verification: three pairings beyond a precomputed e(alpha, beta).

Verification cost is independent of the statement size except for the
low-order IC multi-scalar multiplication over the public inputs — exactly
the behaviour the paper measures in Figure 4.
"""

from ..ec.curves import BN254_R
from ..ec.msm import msm
from ..errors import ProofError
from ..pairing.ate import final_exponentiation, miller_loop, pairing
from .rerandomize import proof_in_groups

R = BN254_R


class PreparedVerifyingKey:
    """A verifying key with e(alpha, beta) precomputed."""

    def __init__(self, vk):
        self.vk = vk
        self.alpha_beta = pairing(vk.alpha_g1, vk.beta_g2)

    @property
    def num_public(self):
        return self.vk.num_public


def prepare(vk):
    return PreparedVerifyingKey(vk)


def verify(pvk, proof, public_inputs):
    """Check a proof against public inputs; raises ProofError on failure."""
    vk = pvk.vk if isinstance(pvk, PreparedVerifyingKey) else pvk
    if len(public_inputs) != vk.num_public:
        raise ProofError(
            "expected %d public inputs, got %d"
            % (vk.num_public, len(public_inputs))
        )
    if not proof_in_groups(proof):
        raise ProofError("proof elements not in the expected groups")
    ic_point = vk.ic[0] + (
        msm(vk.ic[1:], [x % R for x in public_inputs])
        if public_inputs
        else vk.ic[0].curve.infinity
    )
    # e(A, B) == e(alpha, beta) * e(IC, gamma) * e(C, delta)
    lhs = miller_loop(proof.b, -proof.a)
    rhs1 = miller_loop(vk.gamma_g2, ic_point)
    rhs2 = miller_loop(vk.delta_g2, proof.c)
    combined = final_exponentiation(lhs * rhs1 * rhs2)
    alpha_beta = (
        pvk.alpha_beta
        if isinstance(pvk, PreparedVerifyingKey)
        else pairing(vk.alpha_g1, vk.beta_g2)
    )
    # combined = e(A,B)^-1 e(IC,gamma) e(C,delta) must equal e(alpha,beta)^-1
    if not (combined * alpha_beta).is_one():
        raise ProofError("Groth16 pairing check failed")


def is_valid(pvk, proof, public_inputs):
    """Boolean form of :func:`verify`."""
    try:
        verify(pvk, proof, public_inputs)
        return True
    except ProofError:
        return False
