"""Groth16 verification: single proofs, prepared keys, and batches.

Verification cost is independent of the statement size except for the
low-order IC multi-scalar multiplication over the public inputs — exactly
the behaviour the paper measures in Figure 4.  Three layers make the
repeated-verification hot path cheap:

- :class:`PreparedVerifyingKey` caches ``e(alpha, beta)`` *and* the
  Miller-loop line coefficients of the key's fixed G2 points
  (beta/gamma/delta via :func:`repro.pairing.ate.prepare_g2`), so a single
  verification evaluates stored lines instead of re-deriving them.
- :func:`verify_batch` collapses N proofs into one multi-pairing check via
  a random linear combination with Fiat–Shamir-derived coefficients
  (deterministic — no ``random`` anywhere in the check), paying one final
  exponentiation per batch instead of per proof.  A bisection fallback
  isolates the offending proof(s) when a batch fails.
- With ``engine=Engine(EngineConfig(workers=N))`` the batch's per-proof
  Miller loops are sliced across the engine's process pool; GT
  multiplication is exact, so the parallel fold is byte-identical to
  serial.
"""

from ..ec.curves import BN254_R
from ..engine import get_engine
from ..errors import ProofError
from ..hashes.sha256 import sha256
from ..pairing.ate import (
    final_exponentiation,
    multi_miller,
    pairing_check,
    prepare_g2,
)
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span
from .rerandomize import proof_in_groups
from .serialize import proof_to_bytes

R = BN254_R

_BATCH_SIZE = _metrics.histogram("batch.size")

#: Fiat–Shamir coefficients are this many bits (128-bit soundness slack is
#: far beyond the 2^-100 batching literature asks for).
BATCH_COEFF_BITS = 128

_FS_DOMAIN = b"repro/groth16/batch-verify/v1"


class BatchVerificationError(ProofError):
    """A batch failed; ``indices`` points at the offending proof(s)."""

    def __init__(self, indices):
        self.indices = sorted(indices)
        super().__init__(
            "Groth16 batch verification failed at indices %s" % self.indices
        )


class PreparedVerifyingKey:
    """A verifying key with per-key pairing work hoisted out of the loop.

    Stores ``e(alpha, beta)`` and the prepared Miller-loop lines for the
    fixed G2 points ``beta``, ``gamma``, ``delta``.
    """

    def __init__(self, vk):
        self.vk = vk
        self.beta_prepared = prepare_g2(vk.beta_g2)
        self.gamma_prepared = prepare_g2(vk.gamma_g2)
        self.delta_prepared = prepare_g2(vk.delta_g2)
        self.alpha_beta = final_exponentiation(
            multi_miller([(vk.alpha_g1, self.beta_prepared)])
        )

    @property
    def num_public(self):
        return self.vk.num_public


def prepare(vk):
    """Prepare a verifying key; idempotent (prepared keys pass through)."""
    if isinstance(vk, PreparedVerifyingKey):
        return vk
    return PreparedVerifyingKey(vk)


def _check_proof(vk, proof, public_inputs):
    if len(public_inputs) != vk.num_public:
        raise ProofError(
            "expected %d public inputs, got %d"
            % (vk.num_public, len(public_inputs))
        )
    if not proof_in_groups(proof):
        raise ProofError("proof elements not in the expected groups")


def _ic_combination(vk, public_inputs, engine):
    """vk.ic[0] + sum(x_j * vk.ic[j+1]) through the shared engine MSM."""
    if not public_inputs:
        return vk.ic[0]
    return vk.ic[0] + get_engine(engine).msm_points(
        vk.ic[1:], [x % R for x in public_inputs]
    )


def verify(pvk, proof, public_inputs, engine=None):
    """Check a proof against public inputs; raises ProofError on failure."""
    with _span("groth16.verify", public_inputs=len(public_inputs)):
        pvk = prepare(pvk)
        _check_proof(pvk.vk, proof, public_inputs)
        with _span("verify.ic_msm"):
            ic_point = _ic_combination(pvk.vk, public_inputs, engine)
        # e(A, B) == e(alpha, beta) * e(IC, gamma) * e(C, delta), checked as
        # e(-A, B) * e(IC, gamma) * e(C, delta) * e(alpha, beta) == 1.
        with _span("verify.pairing"):
            ok = pairing_check(
                [
                    (-proof.a, proof.b),
                    (ic_point, pvk.gamma_prepared),
                    (proof.c, pvk.delta_prepared),
                ],
                gt_factor=pvk.alpha_beta,
            )
        if not ok:
            raise ProofError("Groth16 pairing check failed")


def is_valid(pvk, proof, public_inputs, engine=None):
    """Boolean form of :func:`verify`."""
    try:
        verify(pvk, proof, public_inputs, engine=engine)
        return True
    except ProofError:
        return False


# -- batch verification ----------------------------------------------------


def batch_coefficients(proofs, public_inputs_list):
    """Fiat–Shamir random-linear-combination coefficients for a batch.

    The coefficients are a hash of the serialized proofs and public inputs,
    so the check is deterministic and replayable; a prover committed to the
    batch contents cannot steer them.  Each coefficient is a nonzero
    ``BATCH_COEFF_BITS``-bit integer.
    """
    transcript = [_FS_DOMAIN, len(proofs).to_bytes(8, "big")]
    for proof, public_inputs in zip(proofs, public_inputs_list):
        transcript.append(proof_to_bytes(proof))
        transcript.append(len(public_inputs).to_bytes(4, "big"))
        for x in public_inputs:
            transcript.append((x % R).to_bytes(32, "big"))
    seed = sha256(b"".join(transcript))
    coeffs = []
    for i in range(len(proofs)):
        digest = sha256(seed + i.to_bytes(8, "big"))
        z = int.from_bytes(digest[: BATCH_COEFF_BITS // 8], "big")
        coeffs.append(z or 1)
    return coeffs


def _batch_miller_slice(pairs):
    """Pool worker: partial Miller-loop product for a slice of the batch."""
    return multi_miller(pairs)


def _batch_check(pvk, proofs, public_inputs_list, engine):
    """Whether the random-linear-combination multi-pairing equation holds.

    With coefficients z_i, the per-proof equations
    ``e(-A_i, B_i) e(IC_i, gamma) e(C_i, delta) e(alpha, beta) == 1``
    combine into
    ``prod e(-z_i A_i, B_i) * e(sum z_i IC_i, gamma)
    * e(sum z_i C_i, delta) * e(alpha, beta)^(sum z_i) == 1``
    — one final exponentiation for the whole batch.
    """
    eng = get_engine(engine)
    vk = pvk.vk
    _BATCH_SIZE.observe(len(proofs))
    with _span("groth16.verify_batch", proofs=len(proofs)):
        return _batch_equation(eng, pvk, vk, proofs, public_inputs_list)


def _batch_equation(eng, pvk, vk, proofs, public_inputs_list):
    coeffs = batch_coefficients(proofs, public_inputs_list)
    scale = sum(coeffs) % R
    # One IC MSM for the whole batch: the z-weighted public inputs fold
    # into per-column scalars, so the MSM size stays num_public + 1.
    with _span("verify.ic_msm", batch=len(proofs)):
        ic_scalars = [scale]
        for j in range(vk.num_public):
            ic_scalars.append(
                sum(z * (xs[j] % R) for z, xs in zip(coeffs, public_inputs_list))
                % R
            )
        ic_point = eng.msm_points(vk.ic, ic_scalars)
    c_point = eng.msm_points([proof.c for proof in proofs], coeffs)
    # -z_i * A_i as z_i * (-A_i): negating the point costs one field
    # negation, while folding the minus into the scalar (R - z) would turn
    # the 128-bit batch coefficient into a full-width 254-bit ladder
    ab_pairs = [
        (eng.msm_points([-proof.a], [z % R]), proof.b)
        for z, proof in zip(coeffs, proofs)
    ]
    # e(alpha, beta)^(sum z_i) rides the Miller product as e(s*alpha, beta)
    # — one G1 scalar-mul plus a prepared loop, cheaper than a GT pow.
    tail = [
        (ic_point, pvk.gamma_prepared),
        (c_point, pvk.delta_prepared),
        (eng.msm_points([vk.alpha_g1], [scale]), pvk.beta_prepared),
    ]
    with _span("verify.pairing", batch=len(proofs)):
        if eng.workers > 1 and len(ab_pairs) > 1:
            # Slice the per-proof Miller loops across the pool; the prepared
            # tail stays in-process (G2Prepared lines are large and already
            # cheap to evaluate).
            n_chunks = min(eng.workers, len(ab_pairs))
            chunks = [ab_pairs[i::n_chunks] for i in range(n_chunks)]
            f = multi_miller(tail)
            for part in eng.map_chunks(_batch_miller_slice, chunks):
                f = f * part
            return final_exponentiation(f).is_one()
        return pairing_check(ab_pairs + tail)


def _bisect_failures(pvk, proofs, public_inputs_list, indices, engine):
    """Recursively halve a failing batch down to the offending indices."""
    if len(indices) == 1:
        return list(indices)
    mid = len(indices) // 2
    bad = []
    for half in (indices[:mid], indices[mid:]):
        sub_proofs = [proofs[i] for i in half]
        sub_publics = [public_inputs_list[i] for i in half]
        if len(half) == 1:
            if not is_valid(pvk, sub_proofs[0], sub_publics[0], engine=engine):
                bad.extend(half)
        elif not _batch_check(pvk, sub_proofs, sub_publics, engine):
            bad.extend(
                _bisect_failures(pvk, proofs, public_inputs_list, half, engine)
            )
    return bad


def verify_batch(pvk, proofs, public_inputs_list, engine=None):
    """Verify N proofs with one multi-pairing check.

    Raises :class:`BatchVerificationError` naming the offending indices if
    any proof fails; accepts iff per-proof :func:`verify` would accept every
    entry.  Structural failures (wrong input counts, off-curve points) are
    reported without running the pairing check at all.
    """
    pvk = prepare(pvk)
    proofs = list(proofs)
    public_inputs_list = [list(xs) for xs in public_inputs_list]
    if len(proofs) != len(public_inputs_list):
        raise ValueError("verify_batch: proofs and public inputs differ in length")
    if not proofs:
        return
    structural = []
    for i, (proof, public_inputs) in enumerate(zip(proofs, public_inputs_list)):
        try:
            _check_proof(pvk.vk, proof, public_inputs)
        except ProofError:
            structural.append(i)
    if structural:
        raise BatchVerificationError(structural)
    if len(proofs) == 1:
        try:
            verify(pvk, proofs[0], public_inputs_list[0], engine=engine)
        except ProofError:
            raise BatchVerificationError([0]) from None
        return
    if _batch_check(pvk, proofs, public_inputs_list, engine):
        return
    bad = _bisect_failures(
        pvk, proofs, public_inputs_list, list(range(len(proofs))), engine
    )
    if not bad:
        # The combined check failed but every proof passes individually —
        # astronomically unlikely (a Fiat–Shamir collision); be loud.
        raise BatchVerificationError(list(range(len(proofs))))
    raise BatchVerificationError(bad)


def batch_is_valid(pvk, proofs, public_inputs_list, engine=None):
    """Boolean form of :func:`verify_batch`."""
    try:
        verify_batch(pvk, proofs, public_inputs_list, engine=engine)
        return True
    except ProofError:
        return False
