"""The Groth16 prover.

Cost profile (why the paper cares about constraint counts): three G1 MSMs
and one G2 MSM of size ~n plus one size-m MSM for h, and FFTs of size d =
next_pow2(m) — overall m log m field work and O(m) group work.

All group and polynomial kernels flow through :mod:`repro.engine`: the
generic Pippenger MSM (shared between G1 and G2), cached-twiddle FFTs, and
the memoized prepared proving key that pre-extracts each CRS query's
non-identity entries.
"""

import secrets

from ..ec.curves import BN254_R
from ..engine import get_engine
from ..errors import ProvingError
from .fft import GENERATOR, domain_root
from .keys import Proof
from .setup import _next_pow2

R = BN254_R


def compute_h_coefficients(structure, engine=None):
    """Coefficients of h(X) = (A(X)B(X) - C(X)) / Z(X) on the QAP domain."""
    eng = get_engine(engine)
    m = structure.constraint_count
    d = _next_pow2(max(m, 2))
    omega = domain_root(d)
    values = structure.values
    a_evals = [0] * d
    b_evals = [0] * d
    c_evals = [0] * d
    for j, (a, b, c, _) in enumerate(structure.constraints):
        a_evals[j] = a.evaluate(values, R)
        b_evals[j] = b.evaluate(values, R)
        c_evals[j] = c.evaluate(values, R)
    a_coset, b_coset, c_coset = eng.coset_extend_many(
        [a_evals, b_evals, c_evals], omega
    )
    # Z(g w^j) = g^d - 1 is constant on the coset
    z_coset = (pow(GENERATOR, d, R) - 1) % R
    z_inv = pow(z_coset, -1, R)
    h_coset = [
        (av * bv - cv) % R * z_inv % R
        for av, bv, cv in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = eng.coset_ifft(h_coset, omega)
    # degree of h is d - 2; the top coefficient must vanish
    if h_coeffs[d - 1] % R != 0:
        raise ProvingError("constraint system is not satisfied (h overflow)")
    return h_coeffs[: d - 1]


def prove(pk, system, rng=None, engine=None):
    """Produce a proof that ``system``'s assignment satisfies its R1CS.

    ``system`` is a fully synthesized ConstraintSystem (witness included).
    ``engine`` selects the compute engine (serial default; a
    ``workers=N`` engine produces byte-identical proofs faster).
    """
    if system.counting_only:
        raise ProvingError("cannot prove a counting-only system")
    system.check_satisfied()
    eng = get_engine(engine)
    prep = eng.prepare(pk)
    curve = prep.curve
    z = system.full_assignment()
    num_vars = len(z)
    if num_vars != len(pk.a_query):
        raise ProvingError("proving key does not match this statement")
    rand = rng or (lambda: secrets.randbelow(R))
    r = rand()
    s = rand()
    h_coeffs = compute_h_coefficients(system, eng)

    a_bases, a_sc = prep.a.gather(z)
    g1_a = eng.msm_affine_point(curve, a_bases, a_sc)
    # A = alpha + sum z_i A_i(tau) + r*delta
    g1_a = pk.alpha_g1 + g1_a + r * pk.delta_g1

    b1_bases, b1_sc = prep.b_g1.gather(z)
    g1_b = eng.msm_affine_point(curve, b1_bases, b1_sc)
    g1_b = pk.beta_g1 + g1_b + s * pk.delta_g1

    b2_bases, b2_sc = prep.b_g2.gather(z)
    g2_b = eng.msm_g2(b2_bases, b2_sc)
    g2_b = pk.beta_g2 + g2_b + s * pk.delta_g2

    # C = sum_w z_i L_i/delta + sum h_k tau^k Z/delta + s*A + r*B1 - rs*delta
    wit_start = 1 + system.num_public
    l_bases, l_sc = prep.l.gather(z, offset=wit_start)
    h_bases, h_sc = prep.h.gather(h_coeffs)
    g1_c = eng.msm_affine_point(curve, l_bases + h_bases, l_sc + h_sc)
    g1_c = (
        g1_c + s * g1_a + r * g1_b + ((-(r * s)) % R) * pk.delta_g1
    )
    return Proof(g1_a, g2_b, g1_c)
