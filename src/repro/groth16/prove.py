"""The Groth16 prover.

Cost profile (why the paper cares about constraint counts): three G1 MSMs
and one G2 MSM of size ~n plus one size-m MSM for h, and FFTs of size d =
next_pow2(m) — overall m log m field work and O(m) group work.
"""

import secrets

from ..ec.curves import BN254_G1, BN254_R
from ..ec.msm import msm
from ..errors import ProvingError
from ..pairing.bn254 import G2Point
from .fft import coset_fft, coset_ifft, domain_root, fft, ifft
from .keys import Proof
from .setup import _next_pow2

R = BN254_R


def _g2_msm(points, scalars):
    """Pippenger bucket MSM over G2 (generic group operations)."""
    import math

    pairs = [
        (pt, k % R)
        for pt, k in zip(points, scalars)
        if not pt.is_infinity and k % R
    ]
    if not pairs:
        return G2Point.infinity()
    if len(pairs) == 1:
        return pairs[0][1] * pairs[0][0]
    c = max(2, min(14, int(math.log2(len(pairs)))))
    max_bits = max(k.bit_length() for _, k in pairs)
    num_windows = (max_bits + c - 1) // c
    mask = (1 << c) - 1
    result = G2Point.infinity()
    for w in range(num_windows - 1, -1, -1):
        if not result.is_infinity:
            for _ in range(c):
                result = result + result
        buckets = [None] * ((1 << c) - 1)
        shift = w * c
        for pt, k in pairs:
            digit = (k >> shift) & mask
            if digit:
                cur = buckets[digit - 1]
                buckets[digit - 1] = pt if cur is None else cur + pt
        acc = G2Point.infinity()
        window_sum = G2Point.infinity()
        for b in range(len(buckets) - 1, -1, -1):
            if buckets[b] is not None:
                acc = acc + buckets[b]
            if not acc.is_infinity:
                window_sum = window_sum + acc
        result = result + window_sum
    return result


def compute_h_coefficients(structure):
    """Coefficients of h(X) = (A(X)B(X) - C(X)) / Z(X) on the QAP domain."""
    m = structure.constraint_count
    d = _next_pow2(max(m, 2))
    omega = domain_root(d)
    values = structure.values
    a_evals = [0] * d
    b_evals = [0] * d
    c_evals = [0] * d
    for j, (a, b, c, _) in enumerate(structure.constraints):
        a_evals[j] = a.evaluate(values, R)
        b_evals[j] = b.evaluate(values, R)
        c_evals[j] = c.evaluate(values, R)
    a_coeffs = ifft(a_evals, omega)
    b_coeffs = ifft(b_evals, omega)
    c_coeffs = ifft(c_evals, omega)
    a_coset = coset_fft(a_coeffs, omega)
    b_coset = coset_fft(b_coeffs, omega)
    c_coset = coset_fft(c_coeffs, omega)
    # Z(g w^j) = g^d - 1 is constant on the coset
    from .fft import GENERATOR

    z_coset = (pow(GENERATOR, d, R) - 1) % R
    z_inv = pow(z_coset, -1, R)
    h_coset = [
        (av * bv - cv) % R * z_inv % R
        for av, bv, cv in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = coset_ifft(h_coset, omega)
    # degree of h is d - 2; the top coefficient must vanish
    if h_coeffs[d - 1] % R != 0:
        raise ProvingError("constraint system is not satisfied (h overflow)")
    return h_coeffs[: d - 1]


def prove(pk, system, rng=None):
    """Produce a proof that ``system``'s assignment satisfies its R1CS.

    ``system`` is a fully synthesized ConstraintSystem (witness included).
    """
    if system.counting_only:
        raise ProvingError("cannot prove a counting-only system")
    system.check_satisfied()
    z = system.full_assignment()
    num_vars = len(z)
    if num_vars != len(pk.a_query):
        raise ProvingError("proving key does not match this statement")
    rand = rng or (lambda: secrets.randbelow(R))
    r = rand()
    s = rand()
    h_coeffs = compute_h_coefficients(system)

    nonzero = [(i, zi) for i, zi in enumerate(z) if zi]
    a_pts = [pk.a_query[i] for i, _ in nonzero]
    a_sc = [zi for _, zi in nonzero]
    g1_a = msm(a_pts + [BN254_G1.generator], a_sc + [0]) if a_pts else BN254_G1.infinity
    # A = alpha + sum z_i A_i(tau) + r*delta
    g1_a = pk.alpha_g1 + g1_a + r * pk.delta_g1

    b_g1_pts = [pk.b_g1_query[i] for i, _ in nonzero]
    g1_b = msm(b_g1_pts, a_sc) if b_g1_pts else BN254_G1.infinity
    g1_b = pk.beta_g1 + g1_b + s * pk.delta_g1

    b_g2_pts = [pk.b_g2_query[i] for i, _ in nonzero]
    g2_b = _g2_msm(b_g2_pts, a_sc)
    g2_b = pk.beta_g2 + g2_b + s * pk.delta_g2

    # C = sum_w z_i L_i/delta + sum h_k tau^k Z/delta + s*A + r*B1 - rs*delta
    wit_start = 1 + system.num_public
    wit_pairs = [
        (pk.l_query[i - wit_start], z[i])
        for i in range(wit_start, num_vars)
        if z[i]
    ]
    h_pairs = [
        (pk.h_query[k], hv) for k, hv in enumerate(h_coeffs) if hv
    ]
    pairs = wit_pairs + h_pairs
    if pairs:
        g1_c = msm([p for p, _ in pairs], [v for _, v in pairs])
    else:
        g1_c = BN254_G1.infinity
    g1_c = (
        g1_c + s * g1_a + r * g1_b + ((-(r * s)) % R) * pk.delta_g1
    )
    return Proof(g1_a, g2_b, g1_c)
