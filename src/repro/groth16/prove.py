"""The Groth16 prover.

Cost profile (why the paper cares about constraint counts): three G1 MSMs
and one G2 MSM of size ~n plus one size-m MSM for h, and FFTs of size d =
next_pow2(m) — overall m log m field work and O(m) group work.

All group and polynomial kernels flow through :mod:`repro.engine`: the
generic Pippenger MSM (shared between G1 and G2), cached-twiddle FFTs, and
the memoized prepared proving key that pre-extracts each CRS query's
non-identity entries.

The field side is single-pass: each constraint's A/B/C linear combinations
are evaluated exactly once per proof, with the satisfaction check folded
into the same pass (the legacy flow evaluated everything twice — once in
``check_satisfied`` and again here).  By default the evaluation runs on the
engine's compiled circuit (flat CSR matrices, memoized by structure hash,
optionally pool-parallel, and incremental across witness re-binds); pass
``use_compiled=False`` to take the LC-walk path, which produces the same
evaluations and therefore byte-identical proofs.
"""

import secrets

from ..ec.curves import BN254_R
from ..engine import get_engine
from ..errors import ProvingError
from ..r1cs.system import unsatisfied_error
from ..telemetry.trace import span as _span
from .fft import GENERATOR, domain_root
from .keys import Proof
from .setup import _next_pow2

R = BN254_R


def evaluate_constraints(system):
    """One LC-walk pass over all constraints: evals + satisfaction check.

    Returns ``(a_evals, b_evals, c_evals)`` (length ``m`` each); raises
    UnsatisfiedError naming the first failing constraint, exactly like
    ``check_satisfied``.  This is the uncompiled reference path — the
    compiled CSR evaluator must agree with it bit-for-bit.
    """
    p = system.field.p
    values = system.values
    a_evals = []
    b_evals = []
    c_evals = []
    for i, (a, b, c, label) in enumerate(system.constraints):
        av = a.evaluate(values, p)
        bv = b.evaluate(values, p)
        cv = c.evaluate(values, p)
        if av * bv % p != cv:
            raise unsatisfied_error(i, label, av, bv, cv)
        a_evals.append(av)
        b_evals.append(bv)
        c_evals.append(cv)
    return a_evals, b_evals, c_evals


def compute_h_coefficients(structure, engine=None, evals=None):
    """Coefficients of h(X) = (A(X)B(X) - C(X)) / Z(X) on the QAP domain.

    ``evals`` supplies precomputed ``(a_evals, b_evals, c_evals)`` (length
    ``m``) from the single evaluation pass; without it, the constraints are
    walked here (kept for direct callers of this function).
    """
    eng = get_engine(engine)
    m = structure.constraint_count
    d = _next_pow2(max(m, 2))
    with _span("groth16.h_coefficients", constraints=m, domain=d):
        return _h_coefficients(structure, eng, d, evals)


def _h_coefficients(structure, eng, d, evals):
    m = structure.constraint_count
    omega = domain_root(d)
    a_evals = [0] * d
    b_evals = [0] * d
    c_evals = [0] * d
    if evals is None:
        values = structure.values
        for j, (a, b, c, _) in enumerate(structure.constraints):
            a_evals[j] = a.evaluate(values, R)
            b_evals[j] = b.evaluate(values, R)
            c_evals[j] = c.evaluate(values, R)
    else:
        a_evals[:m] = evals[0]
        b_evals[:m] = evals[1]
        c_evals[:m] = evals[2]
    a_coset, b_coset, c_coset = eng.coset_extend_many(
        [a_evals, b_evals, c_evals], omega
    )
    # Z(g w^j) = g^d - 1 is constant on the coset
    z_coset = (pow(GENERATOR, d, R) - 1) % R
    z_inv = pow(z_coset, -1, R)
    h_coset = [
        (av * bv - cv) % R * z_inv % R
        for av, bv, cv in zip(a_coset, b_coset, c_coset)
    ]
    h_coeffs = eng.coset_ifft(h_coset, omega)
    # degree of h is d - 2; the top coefficient must vanish
    if h_coeffs[d - 1] % R != 0:
        raise ProvingError("constraint system is not satisfied (h overflow)")
    return h_coeffs[: d - 1]


def prove(pk, system, rng=None, engine=None, use_compiled=True):
    """Produce a proof that ``system``'s assignment satisfies its R1CS.

    ``system`` is a fully synthesized ConstraintSystem (witness included).
    ``engine`` selects the compute engine (serial default; a ``workers=N``
    engine produces byte-identical proofs faster).  ``use_compiled``
    selects the CSR evaluation path (default) or the legacy LC walk; both
    evaluate every constraint at most once and yield identical proofs for
    the same randomness.
    """
    if system.counting_only:
        raise ProvingError("cannot prove a counting-only system")
    eng = get_engine(engine)
    with _span("groth16.prove", constraints=system.constraint_count):
        prep = eng.prepare(pk)
        curve = prep.curve
        z = system.full_assignment()
        num_vars = len(z)
        if num_vars != len(pk.a_query):
            raise ProvingError("proving key does not match this statement")
        with _span("prove.evaluate"):
            if use_compiled:
                _, evals = eng.evaluate_r1cs(system)
            else:
                evals = evaluate_constraints(system)
        rand = rng or (lambda: secrets.randbelow(R))
        r = rand()
        s = rand()
        h_coeffs = compute_h_coefficients(system, eng, evals=evals)

        with _span("prove.msm.a"):
            a_bases, a_sc = prep.a.gather(z)
            g1_a = eng.msm_affine_point(curve, a_bases, a_sc)
            # A = alpha + sum z_i A_i(tau) + r*delta
            g1_a = pk.alpha_g1 + g1_a + r * pk.delta_g1

        with _span("prove.msm.b_g1"):
            b1_bases, b1_sc = prep.b_g1.gather(z)
            g1_b = eng.msm_affine_point(curve, b1_bases, b1_sc)
            g1_b = pk.beta_g1 + g1_b + s * pk.delta_g1

        with _span("prove.msm.b_g2"):
            b2_bases, b2_sc = prep.b_g2.gather(z)
            g2_b = eng.msm_g2(b2_bases, b2_sc)
            g2_b = pk.beta_g2 + g2_b + s * pk.delta_g2

        # C = sum_w z_i L_i/delta + sum h_k tau^k Z/delta + s*A + r*B1 - rs*delta
        with _span("prove.msm.c"):
            wit_start = 1 + system.num_public
            l_bases, l_sc = prep.l.gather(z, offset=wit_start)
            h_bases, h_sc = prep.h.gather(h_coeffs)
            g1_c = eng.msm_affine_point(curve, l_bases + h_bases, l_sc + h_sc)
            g1_c = (
                g1_c + s * g1_a + r * g1_b + ((-(r * s)) % R) * pk.delta_g1
            )
        return Proof(g1_a, g2_b, g1_c)
