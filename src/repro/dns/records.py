"""Resource records and typed RDATA (TXT, DNSKEY, DS, RRSIG).

Wire formats follow RFC 1035 / RFC 4034; the typed classes serialize to and
parse from RDATA bytes so the rest of the system (zone signing, the NOPE
statement's parsers, DCE chain serialization) deals with real formats.
"""

import struct

from ..errors import EncodingError
from .name import DomainName

# RR types (RFC 1035 / 4034 / 6698)
TYPE_A = 1
TYPE_TXT = 16
TYPE_DS = 43
TYPE_RRSIG = 46
TYPE_DNSKEY = 48
TYPE_TLSA = 52

CLASS_IN = 1

# DNSKEY flags
FLAG_ZONE_KEY = 0x0100  # ZSK (bit 7)
FLAG_SEP = 0x0001  # Secure Entry Point: set on KSKs
KSK_FLAGS = FLAG_ZONE_KEY | FLAG_SEP  # 257
ZSK_FLAGS = FLAG_ZONE_KEY  # 256

DNSKEY_PROTOCOL = 3

TYPE_NAMES = {
    TYPE_A: "A",
    TYPE_TXT: "TXT",
    TYPE_DS: "DS",
    TYPE_RRSIG: "RRSIG",
    TYPE_DNSKEY: "DNSKEY",
}


class ResourceRecord:
    """A single RR: owner name, type, class, TTL, raw RDATA."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(self, name, rtype, ttl, rdata, rclass=CLASS_IN):
        self.name = name
        self.rtype = rtype
        self.rclass = rclass
        self.ttl = ttl
        self.rdata = rdata

    def __eq__(self, other):
        return isinstance(other, ResourceRecord) and (
            self.name,
            self.rtype,
            self.rclass,
            self.ttl,
            self.rdata,
        ) == (other.name, other.rtype, other.rclass, other.ttl, other.rdata)

    def __repr__(self):
        return "RR(%s %s %d bytes)" % (
            self.name,
            TYPE_NAMES.get(self.rtype, self.rtype),
            len(self.rdata),
        )

    def to_wire(self, ttl_override=None):
        ttl = self.ttl if ttl_override is None else ttl_override
        return (
            self.name.to_wire()
            + struct.pack(">HHIH", self.rtype, self.rclass, ttl, len(self.rdata))
            + self.rdata
        )

    @classmethod
    def from_wire(cls, data, offset=0):
        name, pos = DomainName.from_wire(data, offset)
        if pos + 10 > len(data):
            raise EncodingError("truncated RR header")
        rtype, rclass, ttl, rdlen = struct.unpack(">HHIH", data[pos : pos + 10])
        pos += 10
        if pos + rdlen > len(data):
            raise EncodingError("truncated RDATA")
        return cls(name, rtype, ttl, data[pos : pos + rdlen], rclass), pos + rdlen


class DnskeyData:
    """DNSKEY RDATA: flags | protocol | algorithm | public key."""

    __slots__ = ("flags", "protocol", "algorithm", "public_key")

    def __init__(self, flags, algorithm, public_key, protocol=DNSKEY_PROTOCOL):
        self.flags = flags
        self.protocol = protocol
        self.algorithm = algorithm
        self.public_key = public_key

    @property
    def is_ksk(self):
        return self.flags & FLAG_SEP != 0

    @property
    def is_zsk(self):
        return self.flags & FLAG_ZONE_KEY != 0 and not self.is_ksk

    def to_bytes(self):
        return (
            struct.pack(">HBB", self.flags, self.protocol, self.algorithm)
            + self.public_key
        )

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 4:
            raise EncodingError("truncated DNSKEY RDATA")
        flags, protocol, algorithm = struct.unpack(">HBB", data[:4])
        return cls(flags, algorithm, data[4:], protocol)

    def key_tag(self):
        """RFC 4034 Appendix B key tag."""
        data = self.to_bytes()
        acc = 0
        for i, byte in enumerate(data):
            acc += byte if i & 1 else byte << 8
        acc += (acc >> 16) & 0xFFFF
        return acc & 0xFFFF


class DsData:
    """DS RDATA: key tag | algorithm | digest type | digest."""

    __slots__ = ("key_tag", "algorithm", "digest_type", "digest")

    def __init__(self, key_tag, algorithm, digest_type, digest):
        self.key_tag = key_tag
        self.algorithm = algorithm
        self.digest_type = digest_type
        self.digest = digest

    def to_bytes(self):
        return struct.pack(">HBB", self.key_tag, self.algorithm, self.digest_type) + self.digest

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 4:
            raise EncodingError("truncated DS RDATA")
        key_tag, algorithm, digest_type = struct.unpack(">HBB", data[:4])
        return cls(key_tag, algorithm, digest_type, data[4:])


class RrsigData:
    """RRSIG RDATA (RFC 4034 §3.1)."""

    __slots__ = (
        "type_covered",
        "algorithm",
        "labels",
        "original_ttl",
        "expiration",
        "inception",
        "key_tag",
        "signer_name",
        "signature",
    )

    def __init__(
        self,
        type_covered,
        algorithm,
        labels,
        original_ttl,
        expiration,
        inception,
        key_tag,
        signer_name,
        signature,
    ):
        self.type_covered = type_covered
        self.algorithm = algorithm
        self.labels = labels
        self.original_ttl = original_ttl
        self.expiration = expiration
        self.inception = inception
        self.key_tag = key_tag
        self.signer_name = signer_name
        self.signature = signature

    def prefix_bytes(self):
        """RDATA with the signature field removed (what gets signed)."""
        return (
            struct.pack(
                ">HBBIIIH",
                self.type_covered,
                self.algorithm,
                self.labels,
                self.original_ttl,
                self.expiration,
                self.inception,
                self.key_tag,
            )
            + self.signer_name.to_wire()
        )

    def to_bytes(self):
        return self.prefix_bytes() + self.signature

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 18:
            raise EncodingError("truncated RRSIG RDATA")
        (
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
        ) = struct.unpack(">HBBIIIH", data[:18])
        signer, pos = DomainName.from_wire(data, 18)
        return cls(
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            data[pos:],
        )


class TlsaData:
    """TLSA RDATA (RFC 6698): how DANE/DCE binds a TLS key to a name.

    usage 3 (DANE-EE) + selector 1 (SubjectPublicKeyInfo) + matching 0
    (exact) carries the raw TLS public key bytes.
    """

    __slots__ = ("usage", "selector", "matching_type", "cert_data")

    def __init__(self, cert_data, usage=3, selector=1, matching_type=0):
        self.usage = usage
        self.selector = selector
        self.matching_type = matching_type
        self.cert_data = cert_data

    def to_bytes(self):
        return (
            bytes([self.usage, self.selector, self.matching_type])
            + self.cert_data
        )

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 3:
            raise EncodingError("truncated TLSA RDATA")
        return cls(data[3:], data[0], data[1], data[2])


class TxtData:
    """TXT RDATA: a sequence of length-prefixed character strings."""

    __slots__ = ("strings",)

    def __init__(self, strings):
        self.strings = [
            s.encode("ascii") if isinstance(s, str) else s for s in strings
        ]
        for s in self.strings:
            if len(s) > 255:
                raise EncodingError("TXT string too long")

    def to_bytes(self):
        out = bytearray()
        for s in self.strings:
            out.append(len(s))
            out.extend(s)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data):
        strings = []
        pos = 0
        while pos < len(data):
            length = data[pos]
            pos += 1
            if pos + length > len(data):
                raise EncodingError("truncated TXT string")
            strings.append(data[pos : pos + length])
            pos += length
        return cls(strings)
