"""The simulated DNS hierarchy, chain building, and chain validation.

``DnsHierarchy`` plays the role of the global DNS: a set of signed zones
from the root down.  ``fetch_chain`` performs step 1 of the NOPE protocol
(Figure 2): collect the DS/DNSKEY RRsets and RRSIGs linking the root ZSK to
the target domain's KSK.  ``validate_chain`` is the native (non-succinct)
validation used by the DCE baseline and the DV+ CA.
"""

import hmac

from ..errors import DnssecError
from .dnssec import ds_digest, verify_rrset
from .name import DomainName
from .records import (
    DnskeyData,
    DsData,
    TYPE_DNSKEY,
    TYPE_DS,
    TYPE_TLSA,
    TlsaData,
)
from .rrset import RRset
from .zone import Zone


class ChainLink:
    """Material for one zone on the path: its DNSKEY RRset and the DS RRset
    for the *next* zone down (both with RRSIGs attached)."""

    def __init__(self, zone_name, dnskey_rrset, child_ds_rrset):
        self.zone_name = zone_name
        self.dnskey_rrset = dnskey_rrset
        self.child_ds_rrset = child_ds_rrset


class DnssecChain:
    """A root-to-domain chain of signed DS/DNSKEY RRsets.

    ``links[0]`` is the top non-root zone (a TLD)... wait: links run from
    the first zone below the root down to the target's parent; the DS for
    the top zone (signed by the root ZSK) is ``root_ds_rrset``.  For DCE
    the chain additionally carries the target zone's DNSKEY RRset and the
    TLSA RRset binding the TLS key.
    """

    def __init__(self, target, root_ds_rrset, links, target_dnskey_rrset=None, tlsa_rrset=None, root_dnskey_rrset=None):
        self.target = target
        self.root_ds_rrset = root_ds_rrset
        self.links = links
        self.target_dnskey_rrset = target_dnskey_rrset
        self.tlsa_rrset = tlsa_rrset
        self.root_dnskey_rrset = root_dnskey_rrset

    def all_rrsets(self):
        out = []
        if self.root_dnskey_rrset is not None:
            out.append(self.root_dnskey_rrset)
        out.append(self.root_ds_rrset)
        for link in self.links:
            out.append(link.dnskey_rrset)
            out.append(link.child_ds_rrset)
        if self.target_dnskey_rrset is not None:
            out.append(self.target_dnskey_rrset)
        if self.tlsa_rrset is not None:
            out.append(self.tlsa_rrset)
        return out

    def wire_size(self):
        """Bytes to ship this chain in a TLS extension (RFC 9102 style)."""
        return sum(rrset.wire_size() for rrset in self.all_rrsets())


class DnsHierarchy:
    """All zones, keyed by name, with longest-match authority lookup."""

    def __init__(self, root_zone):
        if not root_zone.name.is_root:
            raise DnssecError("hierarchy must be rooted at '.'")
        self.zones = {root_zone.name: root_zone}

    @property
    def root(self):
        return self.zones[DomainName.root()]

    def add_zone(self, zone):
        """Register a zone and delegate from its parent (DS record)."""
        parent = self.zones.get(zone.name.parent())
        if parent is None:
            raise DnssecError("parent zone missing for %s" % zone.name)
        self.zones[zone.name] = zone
        parent.delegate(zone)
        return zone

    def zone_for(self, name):
        """The most specific zone containing ``name``."""
        probe = name
        while True:
            # a name's authoritative zone is the deepest zone that is an
            # ancestor-or-self, except that delegation-point DS records
            # live in the parent (handled by callers requesting TYPE_DS)
            if probe in self.zones:
                return self.zones[probe]
            if probe.is_root:
                raise DnssecError("no zone for %s" % name)
            probe = probe.parent()

    def sign_all(self, inception, expiration):
        for zone in self.zones.values():
            zone.sign(inception, expiration)

    def lookup(self, owner, rtype):
        """Authoritative lookup (DS records come from the parent zone)."""
        if isinstance(owner, str):
            owner = DomainName.parse(owner)
        zone = self.zone_for(owner)
        if rtype == TYPE_DS and zone.name == owner and not owner.is_root:
            zone = self.zone_for(owner.parent())
        return zone.get(owner, rtype)

    def path_zones(self, domain):
        """Zones from the first level below the root down to ``domain``."""
        names = []
        probe = domain
        while not probe.is_root:
            names.append(probe)
            probe = probe.parent()
        names.reverse()
        zones = []
        for name in names:
            if name not in self.zones:
                raise DnssecError("zone %s is not signed/present" % name)
            zones.append(self.zones[name])
        return zones

    def fetch_chain(self, domain, for_dce=False):
        """Step 1 of Figure 2: gather the DS chain for ``domain``.

        For NOPE the chain stops at the DS RRset of the domain itself (the
        statement proves knowledge of the matching KSK).  With
        ``for_dce=True`` the target zone's DNSKEY and TLSA RRsets and the
        root DNSKEY RRset are included, as RFC 9102 requires.
        """
        if isinstance(domain, str):
            domain = DomainName.parse(domain)
        path = self.path_zones(domain)
        top = path[0]
        root_ds = self.root.get(top.name, TYPE_DS)
        links = []
        for i, zone in enumerate(path[:-1]):
            child = path[i + 1]
            links.append(
                ChainLink(
                    zone.name,
                    zone.dnskey_rrset(),
                    zone.get(child.name, TYPE_DS),
                )
            )
        target_zone = path[-1]
        target_dnskey = None
        tlsa = None
        root_dnskey = None
        if for_dce:
            target_dnskey = target_zone.dnskey_rrset()
            tlsa_name = domain.child(b"_tcp").child(b"_443")
            try:
                tlsa = target_zone.get(tlsa_name, TYPE_TLSA)
            except DnssecError:
                tlsa = None
            root_dnskey = self.root.dnskey_rrset()
        return DnssecChain(domain, root_ds, links, target_dnskey, tlsa, root_dnskey)

    def publish_tlsa(self, domain, tls_key_bytes):
        """Install a TLSA RRset for the domain (DCE server-side setup)."""
        if isinstance(domain, str):
            domain = DomainName.parse(domain)
        zone = self.zones[domain]
        tlsa_name = domain.child(b"_tcp").child(b"_443")
        rrset = RRset(
            tlsa_name, TYPE_TLSA, zone.ttl, [TlsaData(tls_key_bytes).to_bytes()]
        )
        zone.add_rrset(rrset)
        return rrset


def validate_chain(chain, trusted_root_zsk, now=None, expected_tls_key=None):
    """Native top-down validation (what a DCE client or DV+ CA runs).

    ``trusted_root_zsk``: the root's ZSK DnskeyData (the same trust anchor
    the NOPE statement takes as public input).  Verifies every signature,
    every DS digest, and optionally the TLSA binding of a TLS key.
    """
    # 1. the top DS RRset must be signed by the trusted root ZSK
    verify_rrset(chain.root_ds_rrset, [trusted_root_zsk], now)
    current_ds_datas = [DsData.from_bytes(r) for r in chain.root_ds_rrset.rdatas]
    current_name = chain.root_ds_rrset.name
    for link in chain.links:
        _check_ds_match(current_name, current_ds_datas, link.dnskey_rrset)
        key_datas = [DnskeyData.from_bytes(r) for r in link.dnskey_rrset.rdatas]
        # DNSKEY RRset must be self-signed by the KSK matching the DS
        verify_rrset(link.dnskey_rrset, [k for k in key_datas if k.is_ksk], now)
        zsks = [k for k in key_datas if k.is_zsk]
        verify_rrset(link.child_ds_rrset, zsks, now)
        current_ds_datas = [
            DsData.from_bytes(r) for r in link.child_ds_rrset.rdatas
        ]
        current_name = link.child_ds_rrset.name
    if chain.target_dnskey_rrset is not None:
        _check_ds_match(current_name, current_ds_datas, chain.target_dnskey_rrset)
        key_datas = [
            DnskeyData.from_bytes(r) for r in chain.target_dnskey_rrset.rdatas
        ]
        verify_rrset(
            chain.target_dnskey_rrset, [k for k in key_datas if k.is_ksk], now
        )
        if chain.tlsa_rrset is not None:
            zsks = [k for k in key_datas if k.is_zsk]
            verify_rrset(chain.tlsa_rrset, zsks, now)
            if expected_tls_key is not None:
                tlsa = TlsaData.from_bytes(chain.tlsa_rrset.rdatas[0])
                if tlsa.cert_data != expected_tls_key:
                    raise DnssecError("TLSA does not match the TLS key")
    return current_ds_datas


def _check_ds_match(ds_name, ds_datas, dnskey_rrset):
    """At least one DS digest must match a KSK in the child DNSKEY RRset."""
    if dnskey_rrset.name != ds_name:
        raise DnssecError("DS/DNSKEY name mismatch")
    for rdata in dnskey_rrset.rdatas:
        key = DnskeyData.from_bytes(rdata)
        if not key.is_ksk:
            continue
        for ds in ds_datas:
            if ds.key_tag != key.key_tag() or ds.algorithm != key.algorithm:
                continue
            if hmac.compare_digest(ds.digest, ds_digest(ds_name, key, ds.digest_type)):
                return
    raise DnssecError("no DS digest matches the child KSK")
