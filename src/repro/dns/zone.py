"""Zones: RRset storage, key management, DS delegation, zone signing."""

from ..errors import DnssecError
from .dnssec import DnssecKey, make_ds, sign_rrset
from .name import DomainName
from .records import (
    DnskeyData,
    TYPE_DNSKEY,
    TYPE_DS,
    TYPE_TXT,
    TxtData,
)
from .rrset import RRset

DEFAULT_TTL = 3600


class Zone:
    """A DNSSEC-enabled zone: one KSK, one ZSK, and its RRsets.

    Following the paper's simplification (§2.2), each zone has exactly one
    KSK and one ZSK.  The DNSKEY RRset is signed by the KSK; everything
    else by the ZSK; the DS RRset *for a child* lives in this (the parent)
    zone and is signed by this zone's ZSK.
    """

    def __init__(self, name, ksk, zsk, ds_digest_type, ttl=DEFAULT_TTL):
        self.name = name
        self.ksk = ksk
        self.zsk = zsk
        self.ds_digest_type = ds_digest_type
        self.ttl = ttl
        self.rrsets = {}  # (DomainName, rtype) -> RRset
        self._install_dnskey_rrset()

    @classmethod
    def create(cls, name, algorithm, ds_digest_type, ttl=DEFAULT_TTL, zsk_algorithm=None):
        """Generate fresh keys and build the zone."""
        if isinstance(name, str):
            name = DomainName.parse(name)
        ksk = DnssecKey.generate(algorithm, is_ksk=True)
        zsk = DnssecKey.generate(zsk_algorithm or algorithm, is_ksk=False)
        return cls(name, ksk, zsk, ds_digest_type, ttl)

    def _install_dnskey_rrset(self):
        rdatas = sorted(
            [self.ksk.dnskey().to_bytes(), self.zsk.dnskey().to_bytes()]
        )
        self.rrsets[(self.name, TYPE_DNSKEY)] = RRset(
            self.name, TYPE_DNSKEY, self.ttl, rdatas
        )

    def dnskey_rrset(self):
        return self.rrsets[(self.name, TYPE_DNSKEY)]

    def dnskey_datas(self):
        return [DnskeyData.from_bytes(r) for r in self.dnskey_rrset().rdatas]

    def add_rrset(self, rrset):
        if not rrset.name.is_subdomain_of(self.name):
            raise DnssecError("record outside this zone")
        self.rrsets[(rrset.name, rrset.rtype)] = rrset

    def add_txt(self, owner, strings):
        """Add (or extend) a TXT RRset at ``owner``."""
        if isinstance(owner, str):
            owner = DomainName.parse(owner)
        rdata = TxtData(strings).to_bytes()
        key = (owner, TYPE_TXT)
        if key in self.rrsets:
            self.rrsets[key].rdatas.append(rdata)
            self.rrsets[key].rrsigs.clear()
        else:
            self.rrsets[key] = RRset(owner, TYPE_TXT, self.ttl, [rdata])
        return self.rrsets[key]

    def remove_txt(self, owner):
        if isinstance(owner, str):
            owner = DomainName.parse(owner)
        self.rrsets.pop((owner, TYPE_TXT), None)

    def delegate(self, child_zone):
        """Install a signed DS RRset for a child zone's KSK."""
        if child_zone.name.parent() != self.name:
            raise DnssecError("not a direct child of this zone")
        ds = make_ds(
            child_zone.name, child_zone.ksk.dnskey(), self.ds_digest_type
        )
        self.rrsets[(child_zone.name, TYPE_DS)] = RRset(
            child_zone.name, TYPE_DS, self.ttl, [ds.to_bytes()]
        )
        return ds

    def sign(self, inception, expiration):
        """(Re)sign every RRset: DNSKEY by the KSK, the rest by the ZSK."""
        for (owner, rtype), rrset in self.rrsets.items():
            rrset.rrsigs.clear()
            key = self.ksk if rtype == TYPE_DNSKEY else self.zsk
            sign_rrset(rrset, self.name, key, inception, expiration)

    def get(self, owner, rtype):
        if isinstance(owner, str):
            owner = DomainName.parse(owner)
        rrset = self.rrsets.get((owner, rtype))
        if rrset is None:
            raise DnssecError("no RRset %s/%d in zone %s" % (owner, rtype, self.name))
        return rrset

    def roll_zsk(self):
        """Replace the ZSK (key compromise recovery); re-sign required."""
        self.zsk = DnssecKey.generate(self.zsk.algorithm, is_ksk=False)
        self._install_dnskey_rrset()

    def roll_ksk(self):
        """Replace the KSK; the parent must re-delegate."""
        self.ksk = DnssecKey.generate(self.ksk.algorithm, is_ksk=True)
        self._install_dnskey_rrset()
