"""RRsets and the RFC 4034 canonical signing buffer.

An RRSIG covers a *set* of records of one type at one name (§2.2 of the
paper).  The byte string that actually gets signed is

    RRSIG_RDATA_prefix || sorted canonical RR wire forms

with owner names lower-cased, the original TTL substituted, and RDATA
sorted bytewise (RFC 4034 §3.1.8.1, §6.3).  This exact buffer is what the
NOPE statement re-hashes inside the constraints.
"""

from ..errors import DnssecError
from .name import DomainName
from .records import ResourceRecord


class RRset:
    """All records sharing (name, type, class); carries its RRSIGs."""

    def __init__(self, name, rtype, ttl, rdatas, rclass=1):
        if not rdatas:
            raise DnssecError("empty RRset")
        self.name = name
        self.rtype = rtype
        self.ttl = ttl
        self.rclass = rclass
        self.rdatas = list(rdatas)
        self.rrsigs = []  # list of RrsigData

    @classmethod
    def from_records(cls, records):
        first = records[0]
        for rr in records:
            if (rr.name, rr.rtype, rr.rclass) != (
                first.name,
                first.rtype,
                first.rclass,
            ):
                raise DnssecError("records do not form an RRset")
        return cls(
            first.name,
            first.rtype,
            min(r.ttl for r in records),
            [r.rdata for r in records],
            first.rclass,
        )

    def records(self):
        return [
            ResourceRecord(self.name, self.rtype, self.ttl, rdata, self.rclass)
            for rdata in self.rdatas
        ]

    def sorted_rdatas(self):
        """Canonical RDATA ordering (RFC 4034 §6.3: bytewise)."""
        return sorted(self.rdatas)

    def canonical_wire(self, original_ttl):
        """Concatenated canonical RR wire forms for signing."""
        out = bytearray()
        for rdata in self.sorted_rdatas():
            rr = ResourceRecord(self.name, self.rtype, original_ttl, rdata, self.rclass)
            out.extend(rr.to_wire())
        return bytes(out)

    def signed_data(self, rrsig):
        """The exact byte string the RRSIG's signature covers."""
        if rrsig.type_covered != self.rtype:
            raise DnssecError("RRSIG does not cover this RRset's type")
        return rrsig.prefix_bytes() + self.canonical_wire(rrsig.original_ttl)

    def __repr__(self):
        return "RRset(%s type=%d n=%d sigs=%d)" % (
            self.name,
            self.rtype,
            len(self.rdatas),
            len(self.rrsigs),
        )

    def wire_size(self, include_rrsigs=True):
        """Total bytes on the wire (for the DCE bandwidth comparison)."""
        total = sum(len(rr.to_wire()) for rr in self.records())
        if include_rrsigs:
            from .records import TYPE_RRSIG

            for sig in self.rrsigs:
                rr = ResourceRecord(self.name, TYPE_RRSIG, self.ttl, sig.to_bytes())
                total += len(rr.to_wire())
        return total
