"""Domain names: parsing, canonical (RFC 4034 §6) form, wire format."""

from ..errors import EncodingError

MAX_LABEL = 63
MAX_NAME = 255


class DomainName:
    """An absolute DNS name as a tuple of label byte strings (no root label).

    ``DomainName.parse("Example.COM.")`` and ``parse("example.com")`` both
    yield the canonical (lower-cased) name; the root is the empty tuple.
    """

    __slots__ = ("labels",)

    def __init__(self, labels):
        total = 1  # trailing root byte
        canon = []
        for label in labels:
            if isinstance(label, str):
                label = label.encode("ascii")
            if not label or len(label) > MAX_LABEL:
                raise EncodingError("bad label length")
            canon.append(label.lower())
            total += 1 + len(label)
        if total > MAX_NAME:
            raise EncodingError("name too long")
        self.labels = tuple(canon)

    @classmethod
    def parse(cls, text):
        if isinstance(text, bytes):
            text = text.decode("ascii")
        text = text.rstrip(".")
        if not text:
            return cls(())
        return cls(tuple(part.encode("ascii") for part in text.split(".")))

    @classmethod
    def root(cls):
        return cls(())

    @property
    def is_root(self):
        return not self.labels

    @property
    def depth(self):
        return len(self.labels)

    def parent(self):
        if self.is_root:
            raise EncodingError("the root has no parent")
        return DomainName(self.labels[1:])

    def child(self, label):
        if isinstance(label, str):
            label = label.encode("ascii")
        return DomainName((label,) + self.labels)

    def is_subdomain_of(self, other):
        if other.is_root:
            return True
        n = len(other.labels)
        return len(self.labels) >= n and self.labels[-n:] == other.labels

    def to_wire(self):
        """Canonical wire form: length-prefixed lowercase labels + root."""
        out = bytearray()
        for label in self.labels:
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    @classmethod
    def from_wire(cls, data, offset=0):
        """Parse from wire format; returns (name, next_offset)."""
        labels = []
        pos = offset
        while True:
            if pos >= len(data):
                raise EncodingError("truncated name")
            length = data[pos]
            pos += 1
            if length == 0:
                break
            if length > MAX_LABEL:
                raise EncodingError("bad label length (compression unsupported)")
            if pos + length > len(data):
                raise EncodingError("truncated label")
            labels.append(data[pos : pos + length])
            pos += length
        return cls(tuple(labels)), pos

    def __str__(self):
        if self.is_root:
            return "."
        return ".".join(label.decode("ascii") for label in self.labels) + "."

    def __repr__(self):
        return "DomainName(%s)" % str(self)

    def __eq__(self, other):
        return isinstance(other, DomainName) and self.labels == other.labels

    def __hash__(self):
        return hash(self.labels)

    def __lt__(self, other):
        """Canonical DNS ordering (RFC 4034 §6.1): reversed label order."""
        return self.labels[::-1] < other.labels[::-1]
