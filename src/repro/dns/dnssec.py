"""DNSSEC signing and validation (RFC 4034 semantics).

The algorithm registry carries both the production algorithms the paper's
evaluation uses (8 = RSA/SHA-256 for the root ZSK, 13 = ECDSA P-256/SHA-256
for everything else — §8's setup) and the scaled-profile algorithms
(230 = ECDSA over the 29-bit toy curve with the fixed-capacity sponge hash,
231 = RSA-96 with the same hash).  The toy algorithms hash with a *fixed*
buffer capacity so the in-circuit hash gadget sees a compile-time shape.
"""

import struct

from ..ec import P256, TOY29
from ..errors import DnssecError, SignatureError
from ..gadgets.toyhash import toyhash_padded
from ..hashes.sha256 import sha256
from ..sig.ecdsa import EcdsaPrivateKey, EcdsaPublicKey, bits2int, signature_from_bytes, signature_to_bytes
from ..sig.rsa import RsaPrivateKey, RsaPublicKey
from .records import (
    DnskeyData,
    DsData,
    KSK_FLAGS,
    RrsigData,
    TYPE_DNSKEY,
    ZSK_FLAGS,
)

# Algorithm numbers (8, 13 per IANA; 230/231 in the private-use range)
ALG_RSASHA256 = 8
ALG_ECDSAP256SHA256 = 13
ALG_TOY_ECDSA = 230
ALG_TOY_RSA = 231

# DS digest types (2 per IANA; 252 private-use)
DIGEST_SHA256 = 2
DIGEST_TOYHASH = 252

#: Fixed hash capacities for the toy algorithms (compile-time circuit shape).
TOY_SIG_CAPACITY = 256
TOY_DS_CAPACITY = 64

#: Digest byte lengths by digest type.
DIGEST_SIZES = {DIGEST_SHA256: 32, DIGEST_TOYHASH: 8}


def _rsa_pub_to_wire(pub):
    """RFC 3110 wire format: exponent length, exponent, modulus."""
    exp = pub.e.to_bytes((pub.e.bit_length() + 7) // 8, "big")
    mod = pub.n.to_bytes(pub.byte_length, "big")
    if len(exp) < 256:
        return bytes([len(exp)]) + exp + mod
    return b"\x00" + struct.pack(">H", len(exp)) + exp + mod


def _rsa_pub_from_wire(data):
    if not data:
        raise DnssecError("empty RSA key")
    if data[0] == 0:
        exp_len = struct.unpack(">H", data[1:3])[0]
        off = 3
    else:
        exp_len = data[0]
        off = 1
    exp = int.from_bytes(data[off : off + exp_len], "big")
    mod = int.from_bytes(data[off + exp_len :], "big")
    return RsaPublicKey(mod, exp)


class _EcdsaAlgorithm:
    """Shared implementation for ECDSA-based DNSSEC algorithms."""

    def __init__(self, number, name, curve, hash_fn):
        self.number = number
        self.name = name
        self.curve = curve
        self.hash_fn = hash_fn
        self.coord_bytes = curve.field.byte_length

    def generate(self):
        return EcdsaPrivateKey.generate(self.curve)

    def public_wire(self, private):
        return private.public_key.encode()

    def sign(self, private, data):
        sig = private.sign(self.hash_fn(data))
        return signature_to_bytes(self.curve, sig)

    def verify(self, public_wire, data, signature):
        pub = EcdsaPublicKey.decode(self.curve, public_wire)
        sig = signature_from_bytes(self.curve, signature)
        pub.verify(self.hash_fn(data), sig)

    def hash_to_scalar(self, data):
        return bits2int(self.hash_fn(data), self.curve.order)


class _RsaAlgorithm:
    def __init__(self, number, name, bits, scheme, hash_fn=None):
        self.number = number
        self.name = name
        self.bits = bits
        self.scheme = scheme
        self.hash_fn = hash_fn  # None => scheme hashes internally

    def generate(self):
        return RsaPrivateKey.generate(self.bits)

    def public_wire(self, private):
        return _rsa_pub_to_wire(private.public_key)

    def _payload(self, data):
        return self.hash_fn(data) if self.hash_fn else data

    def sign(self, private, data):
        return private.sign(self._payload(data), scheme=self.scheme)

    def verify(self, public_wire, data, signature):
        pub = _rsa_pub_from_wire(public_wire)
        pub.verify(self._payload(data), signature, scheme=self.scheme)


ALGORITHMS = {
    ALG_RSASHA256: _RsaAlgorithm(
        ALG_RSASHA256, "RSASHA256", 2048, "pkcs1v15-sha256"
    ),
    ALG_ECDSAP256SHA256: _EcdsaAlgorithm(
        ALG_ECDSAP256SHA256, "ECDSAP256SHA256", P256, sha256
    ),
    ALG_TOY_ECDSA: _EcdsaAlgorithm(
        ALG_TOY_ECDSA,
        "TOY-ECDSA",
        TOY29,
        lambda data: toyhash_padded(data, TOY_SIG_CAPACITY),
    ),
    ALG_TOY_RSA: _RsaAlgorithm(
        ALG_TOY_RSA,
        "TOY-RSA",
        96,
        "raw-digest",
        lambda data: toyhash_padded(data, TOY_SIG_CAPACITY),
    ),
}


def ds_digest(owner_name, dnskey_data, digest_type):
    """The DS digest: H(owner wire || DNSKEY RDATA) (RFC 4034 §5.1.4)."""
    payload = owner_name.to_wire() + dnskey_data.to_bytes()
    if digest_type == DIGEST_SHA256:
        return sha256(payload)
    if digest_type == DIGEST_TOYHASH:
        return toyhash_padded(payload, TOY_DS_CAPACITY)
    raise DnssecError("unsupported DS digest type %d" % digest_type)


def make_ds(owner_name, dnskey_data, digest_type):
    return DsData(
        dnskey_data.key_tag(),
        dnskey_data.algorithm,
        digest_type,
        ds_digest(owner_name, dnskey_data, digest_type),
    )


class DnssecKey:
    """A DNSSEC key pair: algorithm implementation + flags (KSK/ZSK)."""

    def __init__(self, algorithm_number, private, is_ksk):
        if algorithm_number not in ALGORITHMS:
            raise DnssecError("unknown algorithm %d" % algorithm_number)
        self.algorithm = algorithm_number
        self.impl = ALGORITHMS[algorithm_number]
        self.private = private
        self.is_ksk = is_ksk

    @classmethod
    def generate(cls, algorithm_number, is_ksk):
        impl = ALGORITHMS.get(algorithm_number)
        if impl is None:
            raise DnssecError("unknown algorithm %d" % algorithm_number)
        return cls(algorithm_number, impl.generate(), is_ksk)

    def dnskey(self):
        return DnskeyData(
            KSK_FLAGS if self.is_ksk else ZSK_FLAGS,
            self.algorithm,
            self.impl.public_wire(self.private),
        )

    def key_tag(self):
        return self.dnskey().key_tag()


def sign_rrset(rrset, signer_name, key, inception, expiration):
    """Create and attach an RRSIG over the RRset (RFC 4034 §3.1.8.1)."""
    rrsig = RrsigData(
        type_covered=rrset.rtype,
        algorithm=key.algorithm,
        labels=rrset.name.depth,
        original_ttl=rrset.ttl,
        expiration=expiration,
        inception=inception,
        key_tag=key.key_tag(),
        signer_name=signer_name,
        signature=b"",
    )
    data = rrset.signed_data(rrsig)
    rrsig.signature = key.impl.sign(key.private, data)
    rrset.rrsigs.append(rrsig)
    return rrsig


def verify_rrsig(rrset, rrsig, dnskey_data, now=None):
    """Validate one RRSIG against one DNSKEY; raises DnssecError."""
    if dnskey_data.algorithm != rrsig.algorithm:
        raise DnssecError("algorithm mismatch")
    if dnskey_data.key_tag() != rrsig.key_tag:
        raise DnssecError("key tag mismatch")
    if not rrset.name.is_subdomain_of(rrsig.signer_name):
        raise DnssecError("signer is not an ancestor of the owner")
    if now is not None and not (rrsig.inception <= now <= rrsig.expiration):
        raise DnssecError("signature outside its validity window")
    impl = ALGORITHMS.get(rrsig.algorithm)
    if impl is None:
        raise DnssecError("unsupported algorithm %d" % rrsig.algorithm)
    data = rrset.signed_data(rrsig)
    try:
        impl.verify(dnskey_data.public_key, data, rrsig.signature)
    except SignatureError as exc:
        raise DnssecError("RRSIG signature invalid: %s" % exc) from exc


def verify_rrset(rrset, dnskey_rrset_datas, now=None):
    """Validate an RRset against any key in a DNSKEY RRset."""
    errors = []
    for rrsig in rrset.rrsigs:
        for key_data in dnskey_rrset_datas:
            try:
                verify_rrsig(rrset, rrsig, key_data, now)
                return rrsig, key_data
            except DnssecError as exc:
                errors.append(str(exc))
    raise DnssecError("no RRSIG validated: %s" % "; ".join(errors[:4]))
