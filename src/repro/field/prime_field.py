"""Prime-field arithmetic.

All higher layers (elliptic curves, pairings, R1CS, Groth16) operate on field
elements represented as plain Python integers in ``[0, p)``; a
:class:`PrimeField` instance carries the modulus and provides the operations
that need more than ``%``: inversion, square roots, batch inversion, random
sampling.  Keeping elements as bare ints (instead of wrapper objects) is the
single most important performance decision in this pure-Python codebase.

A thin :class:`Fp` wrapper with operator overloading is provided for tests
and examples where ergonomics matter more than speed.
"""

import secrets

from ..errors import FieldError


class PrimeField:
    """The field of integers modulo a prime ``p``.

    Elements are plain ints.  The class provides inversion, exponentiation,
    Tonelli-Shanks square roots, Legendre symbols, batch inversion, and
    random sampling.
    """

    def __init__(self, modulus):
        if modulus < 2:
            raise FieldError("modulus must be >= 2")
        self.p = modulus
        self.bits = modulus.bit_length()
        # Precomputed Tonelli-Shanks parameters: p - 1 = q * 2^s with q odd.
        q, s = modulus - 1, 0
        while q % 2 == 0:
            q //= 2
            s += 1
        self._ts_q = q
        self._ts_s = s
        self._nonresidue = None
        self._mont = None

    def __repr__(self):
        return "PrimeField(0x%x)" % self.p

    def __eq__(self, other):
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self):
        return hash(("PrimeField", self.p))

    # -- basic operations ---------------------------------------------------

    def reduce(self, x):
        """Map an arbitrary integer into canonical form in [0, p)."""
        return x % self.p

    def add(self, a, b):
        return (a + b) % self.p

    def sub(self, a, b):
        return (a - b) % self.p

    def mul(self, a, b):
        return (a * b) % self.p

    def neg(self, a):
        return (-a) % self.p

    def inv(self, a):
        """Multiplicative inverse in canonical form; FieldError on zero.

        ``pow(a, -1, p)`` reduces internally and returns a value in
        ``[0, p)``, so no pre- or post-reduction is needed here — callers
        may rely on the result being canonical.
        """
        try:
            return pow(a, -1, self.p)
        except ValueError:
            raise FieldError("inverse of zero")

    def div(self, a, b):
        # inv() is canonical, so one reduction of the product suffices
        return a * self.inv(b) % self.p

    def pow(self, a, e):
        # reduce the base once: pow() over a 254-bit base is measurably
        # faster than over an arbitrarily wide one, and e < 0 requires a
        # reduced base to mean (a mod p)^e
        return pow(a % self.p, e, self.p)

    # -- representation backends ---------------------------------------------

    @property
    def backend(self):
        """The calibrated :class:`~repro.field.montgomery.FieldBackend`.

        Resolved lazily (the first access may run the per-modulus
        micro-calibration) and honors ``force_backend`` /
        ``REPRO_FIELD_BACKEND`` at resolution time.
        """
        from .montgomery import backend_for

        return backend_for(self.p)

    @property
    def mont(self):
        """A :class:`~repro.field.montgomery.MontgomeryContext` for ``p``.

        Always constructible for odd ``p`` regardless of what the
        calibration picked — parity tests and forced-Montgomery kernels
        use it directly.
        """
        if self._mont is None:
            from .montgomery import MontgomeryContext

            self._mont = MontgomeryContext(self.p)
        return self._mont

    def rand(self):
        """Uniform random element of the field."""
        return secrets.randbelow(self.p)

    def rand_nonzero(self):
        while True:
            x = self.rand()
            if x != 0:
                return x

    # -- square roots -------------------------------------------------------

    def legendre(self, a):
        """Legendre symbol: 1 if QR, -1 if non-residue, 0 if zero."""
        a %= self.p
        if a == 0:
            return 0
        ls = pow(a, (self.p - 1) // 2, self.p)
        return -1 if ls == self.p - 1 else 1

    def is_square(self, a):
        return self.legendre(a) >= 0

    def _find_nonresidue(self):
        if self._nonresidue is None:
            z = 2
            while self.legendre(z) != -1:
                z += 1
            self._nonresidue = z
        return self._nonresidue

    def sqrt(self, a):
        """A square root of ``a`` via Tonelli-Shanks.

        Raises FieldError if ``a`` is a non-residue.  The returned root is
        the "even" one is not guaranteed; callers needing a canonical root
        should normalize (e.g. pick min(r, p - r)).
        """
        a %= self.p
        if a == 0:
            return 0
        if self.p % 4 == 3:
            r = pow(a, (self.p + 1) // 4, self.p)
            if r * r % self.p != a:
                raise FieldError("not a quadratic residue")
            return r
        if self.legendre(a) != 1:
            raise FieldError("not a quadratic residue")
        q, s = self._ts_q, self._ts_s
        z = self._find_nonresidue()
        m = s
        c = pow(z, q, self.p)
        t = pow(a, q, self.p)
        r = pow(a, (q + 1) // 2, self.p)
        while t != 1:
            # find least i with t^(2^i) == 1
            i, t2i = 0, t
            while t2i != 1:
                t2i = t2i * t2i % self.p
                i += 1
            b = pow(c, 1 << (m - i - 1), self.p)
            m = i
            c = b * b % self.p
            t = t * c % self.p
            r = r * b % self.p
        return r

    # -- batch operations ---------------------------------------------------

    def batch_inverse(self, xs):
        """Invert a list of nonzero elements with one field inversion.

        Montgomery's trick: 3n multiplications + 1 inversion instead of n
        inversions.  This is the shared helper behind every batched-affine
        hot path (Pippenger bucket accumulation, coordinate normalization);
        calling :meth:`inv` in a loop where this applies is a lint smell
        (see the ``inv-in-loop`` hygiene rule).
        """
        n = len(xs)
        if n == 0:
            return []
        p = self.p
        prefix = [0] * n
        acc = 1
        for i, x in enumerate(xs):
            if x % p == 0:
                raise FieldError("batch_inverse: zero element at index %d" % i)
            prefix[i] = acc
            acc = acc * x % p
        inv_acc = self.inv(acc)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = prefix[i] * inv_acc % p
            inv_acc = inv_acc * xs[i] % p
        return out

    #: historical name; :meth:`batch_inverse` is the canonical spelling
    batch_inv = batch_inverse

    # -- serialization helpers ----------------------------------------------

    @property
    def byte_length(self):
        return (self.bits + 7) // 8

    def to_bytes(self, a):
        return (a % self.p).to_bytes(self.byte_length, "big")

    def from_bytes(self, data):
        x = int.from_bytes(data, "big")
        if x >= self.p:
            raise FieldError("encoding out of range")
        return x


class Fp:
    """Operator-overloaded wrapper over a :class:`PrimeField` element.

    Convenience type for tests and examples; performance-sensitive code works
    with plain ints through :class:`PrimeField` directly.
    """

    __slots__ = ("field", "value")

    def __init__(self, field, value):
        self.field = field
        self.value = value % field.p

    def _coerce(self, other):
        if isinstance(other, Fp):
            if other.field != self.field:
                raise FieldError("mixed fields")
            return other.value
        if isinstance(other, int):
            return other % self.field.p
        return NotImplemented

    def __add__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Fp(self.field, self.value + v)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Fp(self.field, self.value - v)

    def __rsub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Fp(self.field, v - self.value)

    def __mul__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Fp(self.field, self.value * v)

    __rmul__ = __mul__

    def __truediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return Fp(self.field, self.value * self.field.inv(v))

    def __neg__(self):
        return Fp(self.field, -self.value)

    def __pow__(self, e):
        return Fp(self.field, pow(self.value, e, self.field.p))

    def inverse(self):
        return Fp(self.field, self.field.inv(self.value))

    def sqrt(self):
        return Fp(self.field, self.field.sqrt(self.value))

    def __eq__(self, other):
        if isinstance(other, Fp):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.p
        return NotImplemented

    def __hash__(self):
        return hash((self.field.p, self.value))

    def __repr__(self):
        return "Fp(%d mod 0x%x)" % (self.value, self.field.p)

    def __int__(self):
        return self.value
