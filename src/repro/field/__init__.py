"""Finite-field arithmetic: prime fields and the BN254 extension tower."""

from .prime_field import PrimeField, Fp
from .extension import Fq2, Fq6, Fq12, BN254_P, XI

__all__ = ["PrimeField", "Fp", "Fq2", "Fq6", "Fq12", "BN254_P", "XI"]
