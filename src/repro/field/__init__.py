"""Finite-field arithmetic: prime fields and the BN254 extension tower."""

from .prime_field import PrimeField, Fp
from .extension import Fq2, Fq6, Fq12, BN254_P, XI, fq2_raw, fq6_raw, fq12_raw
from .montgomery import (
    BarrettContext,
    FieldBackend,
    MontgomeryContext,
    backend_for,
    force_backend,
    wide_reducer,
)

__all__ = [
    "PrimeField", "Fp", "Fq2", "Fq6", "Fq12", "BN254_P", "XI",
    "fq2_raw", "fq6_raw", "fq12_raw",
    "MontgomeryContext", "BarrettContext", "FieldBackend",
    "backend_for", "force_backend", "wide_reducer",
]
