"""Extension-field tower for the BN254 pairing curve.

Groth16 verification needs the optimal ate pairing on BN254, which in turn
needs the tower

    Fq2  = Fq [u] / (u^2 + 1)
    Fq6  = Fq2[v] / (v^3 - xi),   xi = 9 + u
    Fq12 = Fq6[w] / (w^2 - v)

The classes here are specialized to BN254's base prime (the tower structure
and the Frobenius coefficients are properties of that specific field), which
lets multiplication use the standard Karatsuba shortcuts and lets inversion
bottom out in a single native ``pow(x, -1, p)``.

Elements are immutable; coefficients are plain ints (for Fq2) or lower-level
tower elements.

Multiplication through the tower uses **lazy reduction**: the ``_m2`` /
``_m6`` helpers run Karatsuba over raw integer coefficient tuples with the
``% p`` on accumulated cross terms deferred until the output element is
constructed (Python ints never overflow, so intermediates may grow a few
bits past ``2p^2`` harmlessly).  A full Fq12 multiplication therefore pays
exactly 12 modular reductions and zero intermediate object allocations —
the Miller loop in :mod:`repro.pairing.ate` runs entirely on these paths.
Canonical reduction at construction keeps results bit-identical to the
eagerly-reduced forms.

The boundary reduction itself is pluggable: ``_WIDE`` is the calibrated
wide reducer for this modulus (``repro.field.montgomery.wide_reducer`` —
native ``%`` or Barrett, whichever the startup micro-calibration picked;
both produce identical canonical values).  Tower elements always *store*
canonical ints — coefficients cross equality checks, hashes, and the wire
layer, so Montgomery form never leaks out of the int-tuple kernels in
``ec``/``engine``.  ``set_wide_reducer`` swaps the reducer (tests force
Barrett to prove the parity claim).
"""

from ..errors import FieldError
from .montgomery import wide_reducer as _wide_reducer

#: BN254 (a.k.a. alt_bn128) base-field prime.
BN254_P = 21888242871839275222246405745257275088696311157297823662689037894645226208583

_P = BN254_P

#: calibrated boundary reducer: any int -> canonical form in [0, p)
_WIDE = _wide_reducer(_P)


def set_wide_reducer(fn=None):
    """Install a boundary reducer for the tower; returns the previous one.

    ``None`` restores the calibrated default.  The reducer must map any
    integer (negative or a few bits past ``2 p^2``) to ``[0, p)``; all
    valid reducers produce identical elements, so this only varies speed.
    """
    global _WIDE
    previous = _WIDE
    _WIDE = _wide_reducer(_P) if fn is None else fn
    return previous


# -- unchecked constructors ---------------------------------------------------
#
# The hot paths (twist line values, raw-tuple boundary reduction) build
# elements whose coefficients are already canonical; these skip the
# constructor's redundant `% p` per limb.


def fq2_raw(c0, c1):
    """Fq2 from ALREADY-CANONICAL coefficients (no reduction performed)."""
    e = Fq2.__new__(Fq2)
    e.c0 = c0
    e.c1 = c1
    return e


def fq6_raw(c0, c1, c2):
    """Fq6 from three Fq2 coefficients (no validation)."""
    e = Fq6.__new__(Fq6)
    e.c0 = c0
    e.c1 = c1
    e.c2 = c2
    return e


def fq12_raw(c0, c1):
    """Fq12 from two Fq6 coefficients (no validation)."""
    e = Fq12.__new__(Fq12)
    e.c0 = c0
    e.c1 = c1
    return e


# -- lazy-reduction kernels (raw int tuples, `% p` deferred to construction) --


def _m2(a0, a1, b0, b1):
    """Karatsuba product in Fq2 over raw ints; returns an unreduced pair."""
    t0 = a0 * b0
    t1 = a1 * b1
    return t0 - t1, (a0 + a1) * (b0 + b1) - t0 - t1


def _xi2(c0, c1):
    """Raw multiplication by the Fq6 non-residue xi = 9 + u."""
    return 9 * c0 - c1, 9 * c1 + c0


def _m6(a, b):
    """Toom-style Fq6 product over raw 6-tuples (6 raw Fq2 muls, no mods)."""
    a00, a01, a10, a11, a20, a21 = a
    b00, b01, b10, b11, b20, b21 = b
    v00, v01 = _m2(a00, a01, b00, b01)
    v10, v11 = _m2(a10, a11, b10, b11)
    v20, v21 = _m2(a20, a21, b20, b21)
    # a1 b2 + a2 b1
    t00, t01 = _m2(a10 + a20, a11 + a21, b10 + b20, b11 + b21)
    t00 -= v10 + v20
    t01 -= v11 + v21
    # a0 b1 + a1 b0
    t10, t11 = _m2(a00 + a10, a01 + a11, b00 + b10, b01 + b11)
    t10 -= v00 + v10
    t11 -= v01 + v11
    # a0 b2 + a2 b0
    t20, t21 = _m2(a00 + a20, a01 + a21, b00 + b20, b01 + b21)
    t20 -= v00 + v20
    t21 -= v01 + v21
    x0, x1 = _xi2(t00, t01)
    y0, y1 = _xi2(v20, v21)
    return (v00 + x0, v01 + x1, t10 + y0, t11 + y1, t20 + v10, t21 + v11)


def _mulv6(a):
    """Raw multiplication by v (v^3 = xi) on a 6-tuple."""
    x0, x1 = _xi2(a[4], a[5])
    return (x0, x1, a[0], a[1], a[2], a[3])


def _add6(a, b):
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2],
            a[3] + b[3], a[4] + b[4], a[5] + b[5])


def _sub6(a, b):
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2],
            a[3] - b[3], a[4] - b[4], a[5] - b[5])


class Fq2:
    """Element c0 + c1*u of Fq[u]/(u^2 + 1)."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0, c1):
        self.c0 = c0 % _P
        self.c1 = c1 % _P

    @staticmethod
    def zero():
        return Fq2(0, 0)

    @staticmethod
    def one():
        return Fq2(1, 0)

    def is_zero(self):
        return self.c0 == 0 and self.c1 == 0

    def __eq__(self, other):
        return (
            isinstance(other, Fq2) and self.c0 == other.c0 and self.c1 == other.c1
        )

    def __hash__(self):
        return hash((self.c0, self.c1))

    def __repr__(self):
        return "Fq2(%d, %d)" % (self.c0, self.c1)

    def __add__(self, other):
        return Fq2(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other):
        return Fq2(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self):
        return Fq2(-self.c0, -self.c1)

    def __mul__(self, other):
        rw = _WIDE
        if isinstance(other, int):
            e = Fq2.__new__(Fq2)
            e.c0 = rw(self.c0 * other)
            e.c1 = rw(self.c1 * other)
            return e
        # Karatsuba: (a0 + a1 u)(b0 + b1 u) with u^2 = -1
        t0 = self.c0 * other.c0
        t1 = self.c1 * other.c1
        t2 = (self.c0 + self.c1) * (other.c0 + other.c1)
        e = Fq2.__new__(Fq2)
        e.c0 = rw(t0 - t1)
        e.c1 = rw(t2 - t0 - t1)
        return e

    __rmul__ = __mul__

    def square(self):
        # (a0 + a1 u)^2 = (a0+a1)(a0-a1) + 2 a0 a1 u
        rw = _WIDE
        t = self.c0 * self.c1
        e = Fq2.__new__(Fq2)
        e.c0 = rw((self.c0 + self.c1) * (self.c0 - self.c1))
        e.c1 = rw(t + t)
        return e

    def conjugate(self):
        return Fq2(self.c0, -self.c1)

    def inverse(self):
        # 1/(a0 + a1 u) = (a0 - a1 u) / (a0^2 + a1^2)
        norm = _WIDE(self.c0 * self.c0 + self.c1 * self.c1)
        if norm == 0:
            raise FieldError("inverse of zero in Fq2")
        inv = pow(norm, -1, _P)
        e = Fq2.__new__(Fq2)
        e.c0 = _WIDE(self.c0 * inv)
        e.c1 = _WIDE(-self.c1 * inv)
        return e

    def mul_by_xi(self):
        """Multiply by the Fq6 non-residue xi = 9 + u."""
        return Fq2(9 * self.c0 - self.c1, 9 * self.c1 + self.c0)

    def frobenius(self):
        """x -> x^p; since p = 3 mod 4, u^p = -u."""
        return self.conjugate()

    def pow(self, e):
        result = Fq2.one()
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result


#: Fq6 non-residue xi = 9 + u.
XI = Fq2(9, 1)

# Frobenius coefficients.
#   Fq6:  (a0 + a1 v + a2 v^2)^p = a0^p + a1^p * g1 * v + a2^p * g2 * v^2
#         g1 = xi^((p-1)/3), g2 = xi^(2(p-1)/3)
#   Fq12: (b0 + b1 w)^p = b0^p + b1^p * g12 * w,  g12 = xi^((p-1)/6)
_FROB6_C1 = XI.pow((_P - 1) // 3)
_FROB6_C2 = XI.pow(2 * (_P - 1) // 3)
_FROB12_C1 = XI.pow((_P - 1) // 6)


class Fq6:
    """Element a0 + a1*v + a2*v^2 of Fq2[v]/(v^3 - xi)."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0, c1, c2):
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2

    @staticmethod
    def zero():
        return Fq6(Fq2.zero(), Fq2.zero(), Fq2.zero())

    @staticmethod
    def one():
        return Fq6(Fq2.one(), Fq2.zero(), Fq2.zero())

    def is_zero(self):
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __eq__(self, other):
        return (
            isinstance(other, Fq6)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __hash__(self):
        return hash((self.c0, self.c1, self.c2))

    def __repr__(self):
        return "Fq6(%r, %r, %r)" % (self.c0, self.c1, self.c2)

    def __add__(self, other):
        return Fq6(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other):
        return Fq6(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self):
        return Fq6(-self.c0, -self.c1, -self.c2)

    def _raw(self):
        """Coefficients as a raw 6-tuple for the lazy-reduction kernels."""
        c0, c1, c2 = self.c0, self.c1, self.c2
        return (c0.c0, c0.c1, c1.c0, c1.c1, c2.c0, c2.c1)

    @staticmethod
    def _from_raw(raw):
        """Reduce a raw 6-tuple into a canonical element.

        Exactly one boundary reduction per limb through the calibrated
        wide reducer, with unchecked construction (the constructor's own
        ``% p`` would be a redundant second reduction).
        """
        rw = _WIDE
        return fq6_raw(
            fq2_raw(rw(raw[0]), rw(raw[1])),
            fq2_raw(rw(raw[2]), rw(raw[3])),
            fq2_raw(rw(raw[4]), rw(raw[5])),
        )

    def __mul__(self, other):
        if isinstance(other, (int, Fq2)):
            return Fq6(self.c0 * other, self.c1 * other, self.c2 * other)
        # Toom-style interpolation (CH-SQR / Devegili): 6 raw Fq2 muls with
        # all cross-term reductions deferred to construction.
        return Fq6._from_raw(_m6(self._raw(), other._raw()))

    __rmul__ = __mul__

    def square(self):
        return self * self

    def mul_by_v(self):
        """Multiply by v (v^3 = xi)."""
        return Fq6(self.c2.mul_by_xi(), self.c0, self.c1)

    def inverse(self):
        a0, a1, a2 = self.c0, self.c1, self.c2
        t0 = a0.square() - (a1 * a2).mul_by_xi()
        t1 = a2.square().mul_by_xi() - a0 * a1
        t2 = a1.square() - a0 * a2
        denom = a0 * t0 + (a2 * t1).mul_by_xi() + (a1 * t2).mul_by_xi()
        inv = denom.inverse()
        return Fq6(t0 * inv, t1 * inv, t2 * inv)

    def frobenius(self):
        return Fq6(
            self.c0.frobenius(),
            self.c1.frobenius() * _FROB6_C1,
            self.c2.frobenius() * _FROB6_C2,
        )


class Fq12:
    """Element b0 + b1*w of Fq6[w]/(w^2 - v).  The pairing target group."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0, c1):
        self.c0 = c0
        self.c1 = c1

    @staticmethod
    def zero():
        return Fq12(Fq6.zero(), Fq6.zero())

    @staticmethod
    def one():
        return Fq12(Fq6.one(), Fq6.zero())

    def is_zero(self):
        return self.c0.is_zero() and self.c1.is_zero()

    def is_one(self):
        return self == Fq12.one()

    def __eq__(self, other):
        return (
            isinstance(other, Fq12) and self.c0 == other.c0 and self.c1 == other.c1
        )

    def __hash__(self):
        return hash((self.c0, self.c1))

    def __repr__(self):
        return "Fq12(%r, %r)" % (self.c0, self.c1)

    def __add__(self, other):
        return Fq12(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other):
        return Fq12(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self):
        return Fq12(-self.c0, -self.c1)

    def __mul__(self, other):
        if isinstance(other, (int, Fq2, Fq6)):
            return Fq12(self.c0 * other, self.c1 * other)
        # Karatsuba over raw 6-tuples: 18 raw Fq2 muls, 12 mods total.
        a0, a1 = self.c0._raw(), self.c1._raw()
        b0, b1 = other.c0._raw(), other.c1._raw()
        v0 = _m6(a0, b0)
        v1 = _m6(a1, b1)
        t = _sub6(_sub6(_m6(_add6(a0, a1), _add6(b0, b1)), v0), v1)
        return Fq12(
            Fq6._from_raw(_add6(v0, _mulv6(v1))), Fq6._from_raw(t)
        )

    __rmul__ = __mul__

    def square(self):
        # complex squaring over raw 6-tuples (2 raw Fq6 muls, 12 mods)
        a0, a1 = self.c0._raw(), self.c1._raw()
        v0 = _m6(a0, a1)
        t = _m6(_add6(a0, a1), _add6(a0, _mulv6(a1)))
        return Fq12(
            Fq6._from_raw(_sub6(_sub6(t, v0), _mulv6(v0))),
            Fq6._from_raw(_add6(v0, v0)),
        )

    def conjugate(self):
        """b0 - b1 w, which equals x^(p^6) (the unitary inverse)."""
        return Fq12(self.c0, -self.c1)

    def inverse(self):
        t = (self.c0.square() - self.c1.square().mul_by_v()).inverse()
        return Fq12(self.c0 * t, -(self.c1 * t))

    def frobenius(self):
        return Fq12(
            self.c0.frobenius(),
            self.c1.frobenius() * _FROB12_C1,
        )

    def frobenius_n(self, n):
        x = self
        for _ in range(n % 12):
            x = x.frobenius()
        return x

    def pow(self, e):
        if e < 0:
            return self.inverse().pow(-e)
        result = Fq12.one()
        base = self
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result
