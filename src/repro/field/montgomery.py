"""Montgomery and Barrett reduction contexts plus per-modulus calibration.

CPython's bignum ``%`` is a tuned C divider, so neither REDC nor Barrett
is guaranteed to beat it — on many hosts native ``%`` wins at every
modulus size this repo uses.  This module therefore mirrors the engine's
"never regress below serial" dispatch rule: each modulus gets a tiny
startup micro-calibration (through the telemetry ``perf`` clock, so fake
clocks degrade to the native path deterministically) and the challenger
representation is selected only when it is *meaningfully* faster than
native ``%``.  Two independent axes are calibrated:

* ``mul_kind`` — how kernels multiply: ``"native"`` (``a * b % p``) or
  ``"montgomery"`` (operands kept in Montgomery form, products reduced by
  REDC's multiply-mask-shift).  Consumed by the Jacobian point kernels,
  the MSM bucket reducer, and the FFT butterflies.
* ``wide_kind`` — how lazily-accumulated wide values (a few bits past
  ``2 p^2``) are brought back to canonical form at a domain boundary:
  ``"native"`` (``t % p``) or ``"barrett"`` (multiply-shift by a
  precomputed ``mu = 2^shift // p``).  Consumed by the Fq2/Fq6/Fq12
  tower's boundary reduction.

Whatever the calibration picks, every representation computes the exact
same residues: Montgomery form is a bijection ``x -> x * R mod p`` and
all kernels convert at entry/exit, so results are bit-identical across
backends (the parity suite in ``tests/test_montgomery.py`` pins this).

``REPRO_FIELD_BACKEND`` overrides the calibration for every modulus
(``native`` / ``montgomery`` / ``barrett`` / ``auto``); the
:func:`force_backend` context manager overrides one modulus locally for
tests.
"""

import os

from ..errors import FieldError
from ..telemetry import metrics as _metrics
from ..telemetry.clocks import perf as _perf

#: Montgomery multiplications performed through context methods; kernels
#: that inline REDC bulk-add their counts at kernel granularity.
MONT_MULS = _metrics.counter("field.mont_muls")
#: REDC invocations (every mont_mul/sqr plus entry/exit conversions).
REDC_CALLS = _metrics.counter("field.redc_calls")

#: Environment override for every modulus: native|montgomery|barrett|auto.
BACKEND_ENV = "REPRO_FIELD_BACKEND"

#: Extra bits in R = 2^k beyond the modulus width.  The slack keeps REDC
#: valid (|T| < R*p) for products of values a few bits past p, and sizes
#: the Barrett shift so lazily-accumulated tower sums (bounded by a small
#: multiple of p^2) still reduce with at most a couple of subtractions.
SLACK_BITS = 16

#: Challenger must win by >= 5%: kind_t * 20 < native_t * 19.  Integer
#: coefficients keep this module float-free (field/ bans float literals)
#: and make ties — e.g. a FakeClock returning constant time — resolve to
#: native, the never-regress default.
_WIN_NUM, _WIN_DEN = 20, 19


class MontgomeryContext:
    """REDC constants and operations for one odd modulus.

    ``R = 2^k`` with ``k = p.bit_length() + SLACK_BITS``; Montgomery form
    of ``x`` is ``x * R mod p``.  ``redc(T)`` computes ``T * R^-1 mod p``
    for any ``|T| < R * p`` via one multiply, one mask, one shift — no
    division.  The signed tolerance matters: lazy kernels feed REDC
    differences that may be negative.
    """

    __slots__ = ("p", "k", "r", "mask", "n_prime", "r1", "r2", "r3")

    def __init__(self, p):
        if p < 3 or p % 2 == 0:
            raise FieldError("Montgomery form needs an odd modulus >= 3")
        self.p = p
        self.k = p.bit_length() + SLACK_BITS
        self.r = 1 << self.k
        self.mask = self.r - 1
        # n' = -p^-1 mod R, the REDC folding constant
        self.n_prime = (-pow(p, -1, self.r)) % self.r
        self.r1 = self.r % p          # Montgomery form of 1
        self.r2 = self.r1 * self.r % p  # to_mont multiplier: x * R^2 -> xR
        self.r3 = self.r2 * self.r % p  # inversion helper (see mont_inv)

    def __repr__(self):
        return "MontgomeryContext(bits=%d, k=%d)" % (self.p.bit_length(), self.k)

    def redc(self, t):
        """``t * R^-1 mod p`` in ``[0, p)`` for any ``|t| < R * p``."""
        REDC_CALLS.inc()
        u = (t + ((t * self.n_prime) & self.mask) * self.p) >> self.k
        if u >= self.p:
            return u - self.p
        if u < 0:
            return u + self.p
        return u

    def to_mont(self, x):
        """Canonical int -> Montgomery form (one REDC against R^2)."""
        return self.redc((x % self.p) * self.r2)

    def from_mont(self, xm):
        """Montgomery form -> canonical int (one REDC)."""
        return self.redc(xm)

    def one(self):
        """Montgomery form of 1 (``R mod p``)."""
        return self.r1

    def mont_mul(self, am, bm):
        """Product in Montgomery form: ``redc(aR * bR) = (a*b)R``."""
        MONT_MULS.inc()
        t = am * bm
        u = (t + ((t * self.n_prime) & self.mask) * self.p) >> self.k
        return u - self.p if u >= self.p else u

    def mont_sqr(self, am):
        """Square in Montgomery form."""
        MONT_MULS.inc()
        t = am * am
        u = (t + ((t * self.n_prime) & self.mask) * self.p) >> self.k
        return u - self.p if u >= self.p else u

    def mont_inv(self, am):
        """Inverse in Montgomery form: ``(aR) -> (a^-1)R``.

        ``pow(aR, -1, p) = a^-1 R^-1``; multiplying by ``R^3`` under one
        REDC restores the Montgomery factor: ``a^-1 R^-1 * R^3 * R^-1 =
        a^-1 R``.  Raises FieldError on zero.
        """
        if am == 0:
            raise FieldError("inverse of zero")
        try:
            inv = pow(am, -1, self.p)
        except ValueError:
            raise FieldError("inverse of zero")
        return self.redc(inv * self.r3)

    def mont_batch_inverse(self, xms):
        """Montgomery's trick entirely in Montgomery form.

        3n mont_muls + one inversion; raises FieldError naming the index
        of any zero element, matching ``PrimeField.batch_inverse``.
        """
        n = len(xms)
        if n == 0:
            return []
        prefix = [0] * n
        acc = self.r1
        for i, xm in enumerate(xms):
            if xm == 0:
                raise FieldError("batch_inverse: zero element at index %d" % i)
            prefix[i] = acc
            acc = self.mont_mul(acc, xm)
        inv_acc = self.mont_inv(acc)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = self.mont_mul(prefix[i], inv_acc)
            inv_acc = self.mont_mul(inv_acc, xms[i])
        return out


class BarrettContext:
    """Barrett reduction for one modulus: division by multiply-and-shift.

    ``mu = 2^shift // p`` with ``shift = 2 * p.bit_length() + SLACK_BITS``
    sized for the tower's lazily-accumulated operands (a small multiple of
    ``p^2``): the quotient estimate ``(t * mu) >> shift`` is then at most
    a few short of the true quotient, fixed by the subtraction loop.
    """

    __slots__ = ("p", "shift", "mu")

    def __init__(self, p):
        if p < 2:
            raise FieldError("modulus must be >= 2")
        self.p = p
        self.shift = 2 * p.bit_length() + SLACK_BITS
        self.mu = (1 << self.shift) // p

    def __repr__(self):
        return "BarrettContext(bits=%d)" % self.p.bit_length()

    def reduce(self, t):
        """``t mod p`` in ``[0, p)`` for ``|t| < 2^shift``."""
        p = self.p
        if t < 0:
            r = -t
            r -= ((r * self.mu) >> self.shift) * p
            while r >= p:
                r -= p
            return p - r if r else 0
        t -= ((t * self.mu) >> self.shift) * p
        while t >= p:
            t -= p
        return t

    def mul(self, a, b):
        """``a * b mod p`` via one Barrett reduction."""
        return self.reduce(a * b)


class FieldBackend:
    """The calibrated representation choices for one modulus."""

    __slots__ = ("p", "mul_kind", "wide_kind", "_mont", "_barrett")

    def __init__(self, p, mul_kind, wide_kind):
        self.p = p
        self.mul_kind = mul_kind
        self.wide_kind = wide_kind
        self._mont = None
        self._barrett = None

    def __repr__(self):
        return "FieldBackend(bits=%d, mul=%s, wide=%s)" % (
            self.p.bit_length(), self.mul_kind, self.wide_kind)

    @property
    def mont(self):
        if self._mont is None:
            self._mont = MontgomeryContext(self.p)
        return self._mont

    @property
    def barrett(self):
        if self._barrett is None:
            self._barrett = BarrettContext(self.p)
        return self._barrett

    def wide_reducer(self):
        """The boundary reducer: a callable mapping any int to ``[0, p)``.

        The native variant is the C-level bound method ``p.__rmod__``
        (``p.__rmod__(t) == t % p``) — no Python-frame overhead on the
        hot path.
        """
        if self.wide_kind == "barrett":
            return self.barrett.reduce
        return self.p.__rmod__


def _sample_operands(p, n):
    """Deterministic pseudo-random operands in ``[1, p)`` for calibration.

    A fixed-constant LCG keeps this module free of ``random``/``secrets``
    (timing samples need spread bits, not unpredictability) and makes the
    calibration workload identical across runs.
    """
    mask = (1 << (p.bit_length() + 8)) - 1
    x = 0x9E3779B97F4A7C15A5A5A5A5DEADBEEF
    out = []
    while len(out) < n:
        x = (x * 6364136223846793005 + 1442695040888963407) & mask
        v = x % p
        if v:
            out.append(v)
    return out


def _best_of(fn, rounds=3):
    """Minimum wall time of ``fn()`` over ``rounds`` runs (telemetry clock)."""
    best = None
    for _ in range(rounds):
        t0 = _perf()
        fn()
        dt = _perf() - t0
        if best is None or dt < best:
            best = dt
    return best


def _calibrate(p):
    """Race native ``%`` against REDC and Barrett on this modulus.

    Returns ``(mul_kind, wide_kind)``.  The challenger must beat native
    by the ``_WIN_NUM/_WIN_DEN`` margin at its own game: products of two
    field elements for ``mul_kind``, reduction of ~``2 p^2``-wide values
    for ``wide_kind``.  Zero-width timings (fake clocks) therefore keep
    native on both axes.
    """
    xs = _sample_operands(p, 32)
    ys = xs[1:] + xs[:1]

    def native_mul():
        for a, b in zip(xs, ys):
            _ = a * b % p

    mul_kind = "native"
    if p >= 3 and p % 2:
        ctx = MontgomeryContext(p)
        n_prime, mask, k = ctx.n_prime, ctx.mask, ctx.k

        def mont_mul():
            for a, b in zip(xs, ys):
                t = a * b
                u = (t + ((t * n_prime) & mask) * p) >> k
                if u >= p:
                    u -= p

        native_t = _best_of(native_mul)
        mont_t = _best_of(mont_mul)
        if mont_t * _WIN_NUM < native_t * _WIN_DEN:
            mul_kind = "montgomery"

    wides = [a * b * 3 for a, b in zip(xs, ys)]

    def native_wide():
        for t in wides:
            _ = t % p

    bar = BarrettContext(p)

    def barrett_wide():
        for t in wides:
            bar.reduce(t)

    wide_kind = "native"
    native_wt = _best_of(native_wide)
    barrett_wt = _best_of(barrett_wide)
    if barrett_wt * _WIN_NUM < native_wt * _WIN_DEN:
        wide_kind = "barrett"
    return mul_kind, wide_kind


_backends = {}


def backend_for(p):
    """The (memoized) calibrated :class:`FieldBackend` for modulus ``p``.

    ``REPRO_FIELD_BACKEND`` forces one kind for every modulus; with
    ``auto`` (or unset) each modulus is micro-calibrated once per
    process.  Calibration affects speed only — all backends produce
    identical residues — so processes in one worker pool may legitimately
    calibrate differently.
    """
    backend = _backends.get(p)
    if backend is not None:
        return backend
    forced = os.environ.get(BACKEND_ENV, "auto").strip().lower()
    if forced in ("mont", "montgomery") and p >= 3 and p % 2:
        backend = FieldBackend(p, "montgomery", "native")
    elif forced == "barrett":
        backend = FieldBackend(p, "native", "barrett")
    elif forced == "native":
        backend = FieldBackend(p, "native", "native")
    else:
        mul_kind, wide_kind = _calibrate(p)
        backend = FieldBackend(p, mul_kind, wide_kind)
    _backends[p] = backend
    return backend


def wide_reducer(p):
    """The calibrated boundary reducer for ``p`` (see ``FieldBackend``)."""
    return backend_for(p).wide_reducer()


class force_backend:
    """Context manager pinning the backend kinds for one modulus (tests).

    Within the block, ``backend_for(p)`` returns a backend with the given
    kinds; the previous (calibrated or absent) entry is restored on exit.
    Existing objects that captured the old backend at construction are
    unaffected — rebuild them inside the block.
    """

    def __init__(self, p, mul_kind="native", wide_kind="native"):
        if mul_kind not in ("native", "montgomery"):
            raise ValueError("mul_kind must be native|montgomery")
        if wide_kind not in ("native", "barrett"):
            raise ValueError("wide_kind must be native|barrett")
        self.p = p
        self.backend = FieldBackend(p, mul_kind, wide_kind)
        self._saved = None
        self._had = False

    def __enter__(self):
        self._had = self.p in _backends
        self._saved = _backends.get(self.p)
        _backends[self.p] = self.backend
        return self.backend

    def __exit__(self, exc_type, exc, tb):
        if self._had:
            _backends[self.p] = self._saved
        else:
            _backends.pop(self.p, None)
        return False
