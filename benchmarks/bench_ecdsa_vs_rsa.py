"""§8.3 in-text claim: NOPE's techniques (§5.1-§5.3) take ECDSA from
~17x the cost of RSA down to 3-4x.  Counts are synthesized from the real
gadgets at both toy and production (P-256 / RSA-2048) scales."""

import pytest

from repro.costmodel import ecdsa_vs_rsa_counts
from repro.profiles import PRODUCTION, TOY


def replay(config):
    """Run-certificate replay core: the full §8.3 cost synthesis at both
    scales.  Pure constraint counting — deterministic by construction."""
    toy = ecdsa_vs_rsa_counts(TOY)
    production = ecdsa_vs_rsa_counts(PRODUCTION)
    return {
        "toy": {"%s/%s" % k: v for k, v in sorted(toy.items())},
        "production": {"%s/%s" % k: v for k, v in sorted(production.items())},
    }


@pytest.fixture(scope="module")
def toy_counts():
    return ecdsa_vs_rsa_counts(TOY)


@pytest.fixture(scope="module")
def production_counts():
    return ecdsa_vs_rsa_counts(PRODUCTION)


def test_count_toy(benchmark):
    counts = benchmark.pedantic(
        lambda: ecdsa_vs_rsa_counts(TOY), rounds=1, iterations=1
    )
    assert counts[("ecdsa", "nope")] < counts[("ecdsa", "baseline")]


def test_nope_closes_the_gap(benchmark, production_counts):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    baseline_ratio = (
        production_counts[("ecdsa", "baseline")]
        / production_counts[("rsa", "baseline")]
    )
    nope_ratio = (
        production_counts[("ecdsa", "nope")] / production_counts[("rsa", "nope")]
    )
    # paper: ~17x -> 3-4x; our absolute ratios differ (our baseline is less
    # naive than circom-ecdsa), but NOPE must narrow ECDSA's premium
    assert production_counts[("ecdsa", "nope")] < production_counts[("ecdsa", "baseline")]
    assert nope_ratio < baseline_ratio * 1.05


def test_zz_print_table(benchmark, toy_counts, production_counts):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n== ECDSA vs RSA constraint cost (paper §8.3) ==")
    for scale, counts in (("toy", toy_counts), ("production", production_counts)):
        for technique in ("baseline", "nope"):
            e = counts[("ecdsa", technique)]
            r = counts[("rsa", technique)]
            print(
                "  %-10s %-9s ecdsa=%9d rsa=%9d ratio=%5.1fx"
                % (scale, technique, e, r, e / r)
            )
    print("  paper: baseline ~17x, with NOPE's techniques 3-4x")
