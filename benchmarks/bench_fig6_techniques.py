"""Figure 6: the technique ablation — constraint counts and modeled cost.

Paper (production scale):      this repo measures the same five levels by
  baseline   10.15 M, 486 s    synthesizing the REAL statement with the
  + design    5.33 M, 255 s    technique switches flipped.  Toy-scale runs
  + parsing   3.60 M, 173 s    are exact and fast; the production column in
  + crypto    1.19 M,  57 s    EXPERIMENTS.md uses the same counting path
  + misc      1.13 M,  54 s    at P-256/RSA-2048/SHA-256 scale.

The time/memory columns apply the paper-calibrated linear model
(§8.3's own methodology: "an experimentally derived model relating m to
real performance").
"""

import pytest

from repro.costmodel import LEVELS, PAPER_MODEL, count_statement, figure6_counts
from repro.profiles import TOY


def replay(config):
    """Run-certificate replay core: the exact toy-scale ablation counts
    plus the paper-model projections — deterministic synthesis."""
    rows = figure6_counts(TOY, "example.com")
    return {
        "levels": {name: m for name, m in rows},
        "projected_prove_s": {
            name: PAPER_MODEL.prove_seconds(m) for name, m in rows
        },
    }


@pytest.fixture(scope="module")
def toy_rows():
    return figure6_counts(TOY, "example.com")


@pytest.mark.parametrize("level", [lvl[0] for lvl in LEVELS])
def test_count_level(benchmark, level, toy_rows):
    name_to_spec = {lvl[0]: lvl for lvl in LEVELS}
    _, parsing, crypto, extra = name_to_spec[level]

    def count():
        return count_statement(TOY, "example.com", parsing, crypto)

    m = benchmark.pedantic(count, rounds=1, iterations=1)
    assert m > 0


def test_zz_print_figure6(benchmark, toy_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n== Figure 6 (toy scale, exact synthesized counts) ==")
    print("  %-10s %10s %12s %10s %9s" % ("level", "m", "vs baseline", "time*", "mem*"))
    base = toy_rows[0][1]
    for name, m in toy_rows:
        print(
            "  %-10s %10d %11.2fx %9.1fs %8.2fGB"
            % (
                name,
                m,
                base / m,
                PAPER_MODEL.prove_seconds(m),
                PAPER_MODEL.prove_gigabytes(m),
            )
        )
    print("  (*) paper-calibrated linear model; paper's production-scale")
    print("      reduction is 10.15M -> 1.13M (9.0x); our toy-scale shape")
    print("      is monotone with a smaller span because our 'baseline'")
    print("      gadgets already use several post-2016 techniques.")


def test_reduction_is_monotone(benchmark, toy_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ms = [m for _, m in toy_rows]
    assert all(a >= b for a, b in zip(ms, ms[1:]))
    assert ms[0] / ms[-2] > 1.8  # at least ~2x at toy scale
