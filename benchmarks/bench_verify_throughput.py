"""Verifier throughput: naive vs prepared vs batched vs batched+workers
vs cached (proofs/sec), against the Fig. 4 single-verify baseline.

The client-side verifier is the path a production deployment executes
millions of times per day; this bench measures how far each layer of the
verifier stack moves it:

- **naive**: per-proof ``verify()`` on an *unprepared* verifying key —
  three Miller loops with on-the-fly line derivation plus a fresh
  ``e(alpha, beta)`` every call (the Fig. 4 baseline).
- **prepared**: per-proof ``verify()`` on a ``PreparedVerifyingKey`` —
  cached ``e(alpha, beta)`` and stored Miller-loop lines for
  beta/gamma/delta.
- **batched**: ``verify_batch()`` — one random-linear-combination
  multi-pairing check, one final exponentiation per batch.
- **batched+workers**: the same check with the batch's Miller loops
  sliced across an ``EngineConfig(workers=N)`` process pool.
- **cached**: a client :class:`~repro.core.VerificationCache` hit — a
  dictionary probe; what a repeat connection to the same server pays.

Every path must return verdicts identical to naive ``verify()`` on every
test vector, including tampered proofs — asserted before timing.

Run::

    PYTHONPATH=src python benchmarks/bench_verify_throughput.py [--smoke]
        [--batch N] [--workers N] [--rounds N] [--no-regress] [--no-record]

``--no-regress`` holds this run's batched-vs-prepared speedup to >= 0.98x
the checked-in ``BENCH_verify_throughput.json`` reference (the record's
conservative per-round floor), mirroring ``bench_groth16.py``'s gate.
"""

import argparse
import json
import os

from repro import telemetry
from repro.ec.curves import BN254_R
from repro.engine import Engine, EngineConfig
from repro.field import PrimeField
from repro.groth16 import (
    Proof,
    batch_is_valid,
    is_valid,
    prepare,
    prove,
    setup,
)
from repro.groth16.verify import PreparedVerifyingKey
from repro.r1cs import ConstraintSystem
from repro.telemetry.bench import write_bench_record
from repro.telemetry.clocks import perf
from repro.telemetry.trace import span

FR = PrimeField(BN254_R)
R = BN254_R

#: --no-regress floor: this run's batched-vs-prepared speedup may not fall
#: below this fraction of the checked-in BENCH_verify_throughput.json record
#: (the field-backend never-regress rule: a representation change that does
#: not win must at least not lose)
NO_REGRESS_FLOOR = 0.98


def recorded_speedup(directory=None):
    """The gate reference from the checked-in bench record, or None when
    no record exists yet (first run bootstraps the gate).

    Prefers the conservative per-round floor; records written before the
    floor existed fall back to the headline best-of ratio.
    """
    path = os.path.join(directory or os.getcwd(),
                        "BENCH_verify_throughput.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError):
        return None
    results = record.get("results", {})
    value = results.get("batched_vs_prepared_floor",
                        results.get("batched_vs_prepared"))
    return value if isinstance(value, (int, float)) else None


def cubic_system(w_val):
    """Public x; witness w with w^3 + w + 5 == x (Fig. 4-sized statement:
    verification cost is independent of circuit size)."""
    cs = ConstraintSystem(FR)
    x_val = (pow(w_val, 3, R) + w_val + 5) % R
    x = cs.alloc_public(x_val, "x")
    w = cs.alloc(w_val, "w")
    w2 = cs.mul(w, w)
    w3 = cs.mul(w2, w)
    cs.enforce_equal(w3 + w + 5, x)
    return cs


def make_batch(batch_size, seed=None):
    """One key pair plus ``batch_size`` proofs over distinct public inputs.

    ``seed`` pins the CRS and per-proof randomness to a private PRNG so
    the run's metric counts replay deterministically; unseeded runs keep
    the ``secrets`` default.
    """
    rng = None
    if seed is not None:
        import random

        state = random.Random(seed)
        rng = lambda: state.randrange(1, R)
    systems = [cubic_system(3 + i) for i in range(batch_size)]
    pk, vk, _ = setup(systems[0], rng=rng)
    proofs = [prove(pk, cs, rng=rng) for cs in systems]
    publics = [cs.public_inputs() for cs in systems]
    return vk, proofs, publics


def tamper(proof):
    return Proof(2 * proof.a, proof.b, proof.c)


def check_verdicts_identical(vk, pvk, proofs, publics, engines):
    """Every path must agree with naive verify() on good AND tampered
    vectors; returns the number of vectors checked."""
    vectors = [(proofs[i], publics[i], True) for i in range(len(proofs))]
    vectors.append((tamper(proofs[0]), publics[0], False))
    vectors.append((proofs[1], [publics[1][0] + 1], False))
    for proof, xs, expected in vectors:
        assert is_valid(vk, proof, xs) == expected, "naive verdict drifted"
        assert is_valid(pvk, proof, xs) == expected, "prepared != naive"
    # batched paths: all-good batch, and a batch with one bad entry
    for engine in engines:
        assert batch_is_valid(pvk, proofs, publics, engine=engine)
        bad_proofs = [tamper(p) if i == len(proofs) // 2 else p
                      for i, p in enumerate(proofs)]
        assert not batch_is_valid(pvk, bad_proofs, publics, engine=engine)
        bad_publics = [list(xs) for xs in publics]
        bad_publics[-1][0] += 1
        assert not batch_is_valid(pvk, proofs, bad_publics, engine=engine)
    return len(vectors) + 3 * len(engines)


def time_paths_interleaved(fns, batch_size, rounds):
    """Per-proof times for each path, round-robin: (best-of list, rows).

    Timing every path once per round (instead of all rounds of one path,
    then all rounds of the next) keeps the measurements of the paths
    inside the same time window, so slow drift of the host's load hits
    them all alike — the *ratios* between paths, which the --no-regress
    gate consumes, come out far more stable than with sequential timing.
    The raw per-round rows are returned too, so the caller can derive a
    conservative per-round ratio floor.
    """
    rows = []
    for _ in range(rounds):
        row = []
        for fn in fns:
            t0 = perf()
            fn()
            row.append((perf() - t0) / batch_size)
        rows.append(row)
    best = [min(row[i] for row in rows) for i in range(len(fns))]
    return best, rows


def bench_cached_lookup(rounds=10000):
    """Proofs/sec equivalent of a client verification-cache hit."""
    from repro.core import VerificationCache

    class _FakeLeaf:
        serial = 1
        not_before = 0
        not_after = 1 << 40

    cache = VerificationCache()
    cache.store(b"\x01" * 32, "example.com", object(), _FakeLeaf(), now=100)
    t0 = perf()
    for _ in range(rounds):
        cache.lookup(b"\x01" * 32, "example.com", 100)
    return (perf() - t0) / rounds


def run(batch_size, workers, rounds, seed=None):
    print("generating %d proofs..." % batch_size)
    vk, proofs, publics = make_batch(batch_size, seed=seed)
    pvk = prepare(vk)
    parallel = Engine(EngineConfig(workers=workers))
    try:
        checked = check_verdicts_identical(
            vk, pvk, proofs, publics, engines=[None, parallel]
        )
        print("verdict parity: %d vectors identical across all paths" % checked)

        def naive():
            for proof, xs in zip(proofs, publics):
                # a fresh PreparedVerifyingKey per call = the legacy
                # no-precomputation cost (lines + alpha_beta re-derived)
                assert is_valid(PreparedVerifyingKey(vk), proof, xs)

        def prepared():
            for proof, xs in zip(proofs, publics):
                assert is_valid(pvk, proof, xs)

        def batched():
            assert batch_is_valid(pvk, proofs, publics)

        def batched_workers():
            assert batch_is_valid(pvk, proofs, publics, engine=parallel)

        batched_workers()  # warm the pool outside the timer
        with span("bench.verify.paths", batch=batch_size, workers=workers,
                  rounds=rounds):
            bests, rows = time_paths_interleaved(
                [naive, prepared, batched, batched_workers],
                batch_size, rounds,
            )
        naive_s, prepared_pp, batched_pp, workers_pp = bests
        results = [
            ("naive verify()", naive_s),
            ("prepared verify()", prepared_pp),
            ("batched (N=%d)" % batch_size, batched_pp),
            ("batched + workers=%d" % workers, workers_pp),
            ("cached (client hit)", bench_cached_lookup()),
        ]
        baseline = results[0][1]
        prepared_s = results[1][1]
        batched_s = results[2][1]
        print("\n%-24s %12s %12s %10s" % ("path", "s/proof", "proofs/sec", "speedup"))
        for name, per_proof in results:
            print("%-24s %12.6f %12.1f %9.1fx"
                  % (name, per_proof, 1.0 / per_proof, baseline / per_proof))
        batched_vs_per_proof = prepared_s / batched_s
        # the gate reference: the WORST per-round ratio this run observed.
        # Best-of composites flatter the headline; recording the floor
        # gives --no-regress a reference a future (noisier) run can
        # actually be held to without flaking on scheduler jitter.
        ratio_floor = min(row[1] / row[2] for row in rows)
        print("\nbatched vs per-proof verify() at N=%d: %.2fx "
              "(per-round floor %.2fx)"
              % (batch_size, batched_vs_per_proof, ratio_floor))
        return batched_vs_per_proof, {
            "batch": batch_size,
            "per_proof_s": {name: s for name, s in results},
            "batched_vs_prepared": batched_vs_per_proof,
            "batched_vs_prepared_floor": ratio_floor,
        }
    finally:
        parallel.close()


def replay(config):
    """Deterministic re-execution core for run certificates (certs from
    seeded runs replay strictly; unseeded ones only structurally)."""
    _, results = run(
        config.get("batch", 16),
        config.get("workers", 2),
        config.get("rounds", 3),
        seed=config.get("seed"),
    )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Verifier throughput: naive/prepared/batched/cached"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer rounds, still batch 16)")
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None,
                        help="pin CRS/proof randomness (strict replay)")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing and print the span tree")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_verify_throughput.json")
    parser.add_argument(
        "--no-regress", action="store_true",
        help="fail (exit 1) unless this run's batched-vs-prepared speedup "
             "stays >= %.2f x the checked-in record" % NO_REGRESS_FLOOR,
    )
    args = parser.parse_args(argv)

    # --smoke shrinks nothing here: proof *generation* dominates the bench,
    # the timed section is seconds, and the --no-regress gate needs the
    # same best-of-3 methodology the checked-in record was measured with
    rounds = args.rounds or 3
    if args.trace:
        telemetry.enable()
    # the reference value must be read before write_bench_record replaces it
    reference = recorded_speedup()
    speedup, results = run(args.batch, args.workers, rounds, seed=args.seed)
    if args.trace:
        print()
        print(telemetry.render_trace())
    if not args.no_record:
        config = {"batch": args.batch, "workers": args.workers,
                  "rounds": rounds, "smoke": args.smoke, "trace": args.trace,
                  "seed": args.seed}
        print("wrote %s"
              % write_bench_record("verify_throughput", config, results))
    if args.no_regress:
        if reference is None:
            print("no checked-in record to gate against; skipping --no-regress")
        else:
            floor = NO_REGRESS_FLOOR * reference
            if speedup < floor:
                print("REGRESSION: batched_vs_prepared %.3f < %.3f "
                      "(%.2f x recorded %.3f)"
                      % (speedup, floor, NO_REGRESS_FLOOR, reference))
                raise SystemExit(1)
            print("no-regress gate: %.3f >= %.3f (%.2f x recorded %.3f)"
                  % (speedup, floor, NO_REGRESS_FLOOR, reference))
    if args.batch >= 16 and speedup < 2.0:
        raise SystemExit(
            "batched verification below the 2x target: %.2fx" % speedup
        )
    print("ok")


if __name__ == "__main__":
    main()
