"""Supporting bench: the Groth16 back-end itself (setup/prove/verify).

Verification cost is statement-size independent (the paper's Figure 4
premise); proof size is always 128 bytes.

Run directly for the serial-vs-parallel engine comparison::

    PYTHONPATH=src python benchmarks/bench_groth16.py [--smoke] [--workers N] [-m M]

which reports prover wall-time on the shared serial engine and on a
process-pool engine, and checks the two proofs are byte-identical.
"""

import pytest

from repro import telemetry
from repro.ec.curves import BN254_R
from repro.engine import Engine, EngineConfig
from repro.field import PrimeField
from repro.groth16 import PROOF_SIZE, prepare, proof_to_bytes, prove, setup, verify
from repro.r1cs import ConstraintSystem
from repro.telemetry.bench import write_bench_record
from repro.telemetry.clocks import perf
from repro.telemetry.trace import span

FR = PrimeField(BN254_R)

#: --no-regress floor: a workers=N engine may not run meaningfully slower
#: than serial.  Adaptive dispatch keeps undersized kernels serial, so the
#: two runs should be near-identical; 0.98 absorbs timer noise only.
NO_REGRESS_FLOOR = 0.98


def chain_circuit(m):
    cs = ConstraintSystem(FR)
    x = cs.alloc_public(3)
    acc = cs.alloc(3)
    cs.enforce_equal(acc, x)
    for _ in range(m):
        acc = cs.mul(acc, acc + 1)
    return cs


@pytest.fixture(scope="module", params=[64, 1024], ids=["m=64", "m=1024"])
def keyed(request):
    cs = chain_circuit(request.param)
    pk, vk, _ = setup(cs)
    proof = prove(pk, cs)
    return cs, pk, prepare(vk), proof


def test_prove(benchmark, keyed):
    cs, pk, _, _ = keyed
    benchmark.pedantic(lambda: prove(pk, cs), rounds=3, iterations=1)


def test_verify(benchmark, keyed):
    cs, _, pvk, proof = keyed
    benchmark.pedantic(
        lambda: verify(pvk, proof, cs.public_inputs()), rounds=5, iterations=1
    )


def test_proof_size(benchmark, keyed):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, _, proof = keyed
    assert len(proof_to_bytes(proof)) == PROOF_SIZE == 128


def _fixed_rng():
    vals = [123456789, 987654321]
    return lambda: vals.pop(0)


def compare_engines(m, workers, rounds=1, seed=None):
    """Time the prover on the serial engine vs a workers=N pool engine.

    Returns (serial_seconds, parallel_seconds, proof_bytes); raises if the
    two engines disagree on the proof (they must be byte-identical — group
    arithmetic is exact, so re-association cannot change the result).

    ``seed`` pins the CRS and warm-up proof randomness to a private PRNG
    (the timed proves already use fixed scalars), making the run's metric
    counts — and therefore its run certificate — deterministically
    replayable.  Unseeded runs keep the ``secrets`` default.
    """
    rng = None
    if seed is not None:
        import random

        state = random.Random(seed)
        rng = lambda: state.randrange(1, BN254_R)
    cs = chain_circuit(m)
    pk, vk, _ = setup(cs, rng=rng)
    parallel = Engine(EngineConfig(workers=workers))
    try:
        # warm the prepared-key cache and the worker pool outside the timers
        prove(pk, cs, rng=rng)
        prove(pk, cs, rng=rng, engine=parallel)

        with span("bench.prove.serial", m=m, rounds=rounds):
            t0 = perf()
            for _ in range(rounds):
                p_serial = prove(pk, cs, rng=_fixed_rng())
            serial_s = (perf() - t0) / rounds

        with span("bench.prove.parallel", m=m, workers=workers, rounds=rounds):
            t0 = perf()
            for _ in range(rounds):
                p_parallel = prove(pk, cs, rng=_fixed_rng(), engine=parallel)
            parallel_s = (perf() - t0) / rounds

        serial_bytes = proof_to_bytes(p_serial)
        if serial_bytes != proof_to_bytes(p_parallel):
            raise AssertionError("serial and parallel proofs differ")
        verify(prepare(vk), p_parallel, cs.public_inputs())
        return serial_s, parallel_s, serial_bytes
    finally:
        parallel.close()


def replay(config):
    """Deterministic re-execution core for run certificates (certs from
    seeded runs replay strictly; unseeded ones only structurally)."""
    m = config.get("m", 1024)
    workers = config.get("workers", 2)
    serial_s, parallel_s, proof_bytes = compare_engines(
        m, workers, seed=config.get("seed")
    )
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "proof_bytes": len(proof_bytes),
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Groth16 prover: serial vs parallel engine wall-time"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small circuit, one round (CI-sized, ~30 s)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("-m", type=int, default=None,
                        help="constraint-chain length (default 96 smoke / 1024)")
    parser.add_argument("--seed", type=int, default=None,
                        help="pin CRS/warm-up randomness (strict replay)")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing and print the span tree")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_groth16.json")
    parser.add_argument(
        "--no-regress", action="store_true",
        help="fail (exit 1) unless the workers=N engine keeps speedup >= "
             "%.2f — the adaptive-dispatch never-regress gate" % NO_REGRESS_FLOOR,
    )
    args = parser.parse_args(argv)

    m = args.m or (96 if args.smoke else 1024)
    if args.trace:
        telemetry.enable()
    serial_s, parallel_s, proof_bytes = compare_engines(
        m, args.workers, seed=args.seed
    )
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"chain_circuit(m={m}), proof = {len(proof_bytes)} bytes")
    print(f"  prove, serial engine:       {serial_s:8.3f} s")
    print(f"  prove, workers={args.workers} engine:    {parallel_s:8.3f} s"
          f"   ({speedup:.2f}x)")
    print("  proofs byte-identical, verification passed")
    if args.trace:
        print()
        print(telemetry.render_trace())
    if not args.no_record:
        config = {"m": m, "workers": args.workers, "smoke": args.smoke,
                  "trace": args.trace, "seed": args.seed}
        results = {"serial_s": serial_s, "parallel_s": parallel_s,
                   "speedup": speedup, "proof_bytes": len(proof_bytes)}
        print("wrote %s" % write_bench_record("groth16", config, results))
    if args.no_regress and speedup < NO_REGRESS_FLOOR:
        print("REGRESSION: workers=%d speedup %.3f < %.2f floor"
              % (args.workers, speedup, NO_REGRESS_FLOOR))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
