"""Supporting bench: the Groth16 back-end itself (setup/prove/verify).

Verification cost is statement-size independent (the paper's Figure 4
premise); proof size is always 128 bytes."""

import pytest

from repro.ec.curves import BN254_R
from repro.field import PrimeField
from repro.groth16 import PROOF_SIZE, prepare, proof_to_bytes, prove, setup, verify
from repro.r1cs import ConstraintSystem

FR = PrimeField(BN254_R)


def chain_circuit(m):
    cs = ConstraintSystem(FR)
    x = cs.alloc_public(3)
    acc = cs.alloc(3)
    cs.enforce_equal(acc, x)
    for _ in range(m):
        acc = cs.mul(acc, acc + 1)
    return cs


@pytest.fixture(scope="module", params=[64, 1024], ids=["m=64", "m=1024"])
def keyed(request):
    cs = chain_circuit(request.param)
    pk, vk, _ = setup(cs)
    proof = prove(pk, cs)
    return cs, pk, prepare(vk), proof


def test_prove(benchmark, keyed):
    cs, pk, _, _ = keyed
    benchmark.pedantic(lambda: prove(pk, cs), rounds=3, iterations=1)


def test_verify(benchmark, keyed):
    cs, _, pvk, proof = keyed
    benchmark.pedantic(
        lambda: verify(pvk, proof, cs.public_inputs()), rounds=5, iterations=1
    )


def test_proof_size(benchmark, keyed):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, _, proof = keyed
    assert len(proof_to_bytes(proof)) == PROOF_SIZE == 128
