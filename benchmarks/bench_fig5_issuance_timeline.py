"""Figure 5: the NOPE issuance timeline vs plain ACME.

Paper: NOPE proof generation 35-55 s (single thread, bellman), ACME
initiation ~seconds, 30 s DNS propagation, ACME verification ~seconds;
NOPE total ~3x plain ACME.  Here proof generation is measured through the
pure-Python Groth16 prover on the toy statement, and the production-scale
proving time is projected with the paper-calibrated cost model.
"""

from repro.core import run_legacy_acme
from repro.costmodel import PAPER_MODEL, count_statement
from repro.ec import TOY29
from repro.profiles import PRODUCTION, TOY
from repro.sig import EcdsaPrivateKey


def replay(config):
    """Run-certificate replay core: the toy-scale statement count and its
    model projection (the timeline itself needs the session-scoped
    groth16 world, whose trusted setup a replay cannot afford — and whose
    secrets-based randomness it could not reproduce anyway; the
    production-scale count is minutes of synthesis, too slow to run twice
    per replay)."""
    m = count_statement(TOY, "example.com", "nope", "nope")
    return {
        "toy_m": m,
        "projected_prove_s": PAPER_MODEL.prove_seconds(m),
        "projected_prove_gb": PAPER_MODEL.prove_gigabytes(m),
    }


def test_nope_proof_generation(benchmark, groth16_world):
    w = groth16_world
    prover = w["prover"]
    from repro.x509.cert import SubjectPublicKeyInfo

    tls_bytes = SubjectPublicKeyInfo(w["tls_key"].public_key).raw_key_bytes()
    benchmark.pedantic(
        lambda: prover.generate_proof(
            tls_bytes, w["ca"].org_name, ts=w["clock"].now()
        ),
        rounds=2,
        iterations=1,
    )


def test_acme_validation_step(benchmark, groth16_world):
    w = groth16_world
    zone = w["hierarchy"].zones[w["prover"].domain]
    key = EcdsaPrivateKey.generate(TOY29)

    def issue():
        return run_legacy_acme(w["acme"], zone, "nope-tools", key, w["clock"])

    benchmark.pedantic(issue, rounds=3, iterations=1)


def test_zz_print_timeline(benchmark, groth16_world):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    w = groth16_world
    print("\n== Figure 5: issuance timeline (simulated clock seconds) ==")
    for step, seconds in w["timeline"].steps:
        print("  %-24s %8.1f s" % (step, seconds))
    print("  %-24s %8.1f s" % ("TOTAL", w["timeline"].total()))
    print("  paper: proof 35-55 s; DNS propagation 30 s; total ~3x ACME")
    # production projection from exact constraint counts
    m = count_statement(PRODUCTION, "example.com", "nope", "nope")
    print(
        "  production-scale projection (paper-calibrated model): %s"
        % PAPER_MODEL.describe(m)
    )
