"""Figure 4: client-side cost to verify a server's authenticity.

Five (server, client) configurations; for each, the bench measures the
wall time from "credentials in hand" to "authenticated" and reports the
bytes on the wire.  Absolute times are pure-Python (the paper's native row
is compiled code); the shape to compare: legacy ~= NOPE-server/legacy-
client << NOPE/NOPE, and DCE costs ~2x the certificate bandwidth.

Paper's numbers: 2554 B legacy, 2783 B NOPE (+~9%), 5-6 KB DCE; 0.3 ms
legacy, 1.5 ms NOPE native, 0.7 ms DCE.
"""

from repro.core import DceClient, DceServer, NopeClient, run_legacy_acme
from repro.ec import TOY29
from repro.profiles import TOY
from repro.sig import EcdsaPrivateKey
from repro.x509.validate import chain_wire_size

_report = {}


def replay(config):
    """Run-certificate replay core: the bytes-on-the-wire arithmetic this
    figure is about, over a fixed proof body (the timed verify paths need
    the session-scoped groth16 world and secrets-generated TLS keys, which
    a deterministic replay cannot reproduce)."""
    from repro.wire import KIND_SIMULATION, VERSION_PRODUCTION, envelope_to_sans, seal

    body = bytes(i % 251 for i in range(128))
    env = seal(KIND_SIMULATION, VERSION_PRODUCTION, body, "nope-tools",
               shape_id="bench/fig4")
    sans = envelope_to_sans(env)
    return {
        "san_labels": len(sans),
        "encoded_proof_bytes": sum(len(s) for s in sans),
        "raw_proof_bytes": len(body),
    }


def _legacy_chain(world):
    if "legacy_chain" not in world:
        zone = world["hierarchy"].zones[world["prover"].domain]
        key = EcdsaPrivateKey.generate(TOY29)
        chain, _ = run_legacy_acme(
            world["acme"], zone, "nope-tools", key, world["clock"]
        )
        world["legacy_chain"] = chain
    return world["legacy_chain"]


def test_legacy_server_legacy_client(benchmark, groth16_world):
    w = groth16_world
    chain = _legacy_chain(w)
    now = w["clock"].now()
    benchmark.pedantic(
        lambda: w["legacy_client"].verify_server("nope-tools", chain, now),
        rounds=10, iterations=1,
    )
    _report["legacy/legacy"] = chain_wire_size(chain)


def test_legacy_server_nope_client(benchmark, groth16_world):
    w = groth16_world
    chain = _legacy_chain(w)
    now = w["clock"].now()
    benchmark.pedantic(
        lambda: w["client"].verify_server("nope-tools", chain, now),
        rounds=10, iterations=1,
    )
    _report["legacy/NOPE"] = chain_wire_size(chain)


def test_nope_server_legacy_client(benchmark, groth16_world):
    w = groth16_world
    now = w["clock"].now()
    benchmark.pedantic(
        lambda: w["legacy_client"].verify_server("nope-tools", w["chain"], now),
        rounds=10, iterations=1,
    )
    _report["NOPE/legacy"] = chain_wire_size(w["chain"])


def test_nope_server_nope_client(benchmark, groth16_world):
    w = groth16_world
    now = w["clock"].now()
    benchmark.pedantic(
        lambda: w["client"].verify_server("nope-tools", w["chain"], now),
        rounds=5, iterations=1,
    )
    _report["NOPE/NOPE"] = chain_wire_size(w["chain"])


def test_dce_server_dce_client(benchmark, groth16_world):
    w = groth16_world
    tls_key = EcdsaPrivateKey.generate(TOY29)
    server = DceServer(
        w["hierarchy"], "nope-tools", tls_key.public_key.encode(),
        now=w["clock"].now(),
    )
    client = DceClient(w["prover"].root_zsk_dnskey())
    payload = server.handshake_payload()
    now = w["clock"].now()
    benchmark.pedantic(
        lambda: client.verify_server(payload[0], payload[1], now=now),
        rounds=10, iterations=1,
    )
    _report["DCE/DCE"] = server.bandwidth()


def test_zz_print_bandwidth_table(benchmark, groth16_world):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Prints the Figure 4 bandwidth column after the timing benches."""
    legacy = _report.get("legacy/legacy", 0)
    print("\n== Figure 4: bytes on the wire (this repo vs paper shape) ==")
    for config, size in sorted(_report.items()):
        rel = (100.0 * size / legacy) if legacy else 0.0
        print("  %-14s %6d B  (%.0f%% of legacy)" % (config, size, rel))
    if "NOPE/NOPE" in _report and legacy:
        overhead = _report["NOPE/NOPE"] - legacy
        print(
            "  NOPE adds %d B (paper: +229 B, ~10%% of the chain)" % overhead
        )
