"""Figure 3: the attacker-subset analysis matrix, by simulation.

Runs all 16 attacker subsets against all four schemes and prints the
matrix in the paper's layout.  The benchmark measures one representative
scenario evaluation; the full sweep happens once in a fixture.
"""

import pytest

from repro.analysis import (
    AttackerCapabilities,
    all_subsets,
    evaluate_scheme,
    format_matrix,
    run_matrix,
)


def replay(config):
    """Run-certificate replay core: the full 16-subset x 4-scheme sweep.
    Pure simulation over enumerated capability subsets — deterministic."""
    matrix = run_matrix()
    return {
        "impersonated": sorted(
            "%s/%s" % key for key, outcome in matrix.items()
            if outcome.impersonated
        ),
        "cells": len(matrix),
    }


@pytest.fixture(scope="module")
def matrix():
    return run_matrix()


def test_scenario_evaluation(benchmark):
    caps = AttackerCapabilities(legacy_dns=True, dnssec=True)
    outcome = benchmark.pedantic(
        lambda: evaluate_scheme("NOPE", caps), rounds=2, iterations=1
    )
    assert outcome.impersonated


def test_zz_print_matrix(benchmark, matrix):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n== Figure 3: attacker analysis (simulated) ==")
    print(format_matrix(matrix))
    # the headline property: NOPE is impersonated only when both a
    # certificate path AND DNSSEC are compromised
    for caps in all_subsets():
        nope = matrix[(caps.label(), "NOPE")]
        expected = caps.dnssec and (caps.legacy_dns or caps.ca)
        assert nope.impersonated == expected, caps.label()
        dv = matrix[(caps.label(), "DV")]
        assert dv.impersonated == (caps.legacy_dns or caps.ca)
        dce = matrix[(caps.label(), "DCE")]
        assert dce.impersonated == caps.dnssec
