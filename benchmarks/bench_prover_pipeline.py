"""Prover pipeline stage timings: synthesize / compile / bind+evaluate /
FFT / MSM, plus the compiled-vs-LC parity and speedup gates.

The workload is the paper's Figure 5 repeated-issuance shape: one
statement-sized circuit is synthesized and compiled once, then each "proof"
re-binds three pass-through public wires (T, N, TS) and re-evaluates.  The
legacy path walks every LinearCombination per proof; the compiled path
evaluates the memoized CSR matrices once, then re-evaluates only the rows
reading a re-bound wire on later proofs.  The gate requires the warm
compiled bind+evaluate stage to be at least 2x faster than the LC walk.

A second, proving-key-sized circuit checks end-to-end proof parity: the
legacy LC path, the compiled serial path, and a ``workers=2`` engine must
produce byte-identical proofs for the same randomness.

Run::

    PYTHONPATH=src python benchmarks/bench_prover_pipeline.py [--smoke]
        [-m M] [--keyed-m M] [--workers N] [--rounds N]
"""

import argparse

from repro import telemetry
from repro.ec.curves import BN254_R
from repro.engine import Engine, EngineConfig
from repro.field import PrimeField
from repro.groth16 import (
    compute_h_coefficients,
    evaluate_constraints,
    prepare,
    proof_to_bytes,
    prove,
    setup,
    verify,
)
from repro.r1cs import CompiledCircuit, ConstraintSystem
from repro.telemetry.bench import write_bench_record
from repro.telemetry.clocks import perf
from repro.telemetry.trace import span

FR = PrimeField(BN254_R)


def statement_like_circuit(m):
    """A statement-shaped system: three pass-through-bound public inputs
    (T, N, TS) that no other constraint touches, plus ``m`` constraints of
    bulk logic mixing byte-sized and full-width values (as the real
    statement mixes byte wires with big-int limbs).

    Returns ``(cs, binding_wires)`` with value tracking enabled, matching
    the synthesize-once / bind-per-proof flow of ``NopeStatement``.
    """
    cs = ConstraintSystem(FR)
    t = cs.alloc_public(0, "T")
    n = cs.alloc_public(0, "N")
    ts = cs.alloc_public(0, "TS")
    wires = tuple(next(iter(lc.terms)) for lc in (t, n, ts))
    for bound in (t, n, ts):
        cs.enforce(bound, cs.one, bound, "bind")
    small = [cs.alloc((i * 37 + 11) % 251, "byte%d" % i) for i in range(64)]
    acc = cs.alloc(7, "seed")
    cs.enforce_equal(acc, cs.constant(7), "seed.eq")
    for i in range(m):
        a = small[i % len(small)]
        b = small[(3 * i + 1) % len(small)]
        if i % 2:
            cs.mul(a + b, a + 2, "sp%d" % i)
        else:
            acc = cs.mul(acc, a + 1, "bulk%d" % i)
    cs.enable_value_tracking()
    return cs, wires


def bind(cs, wires, t_val, n_val, ts_val):
    t_w, n_w, ts_w = wires
    cs.set_value(t_w, t_val)
    cs.set_value(n_w, n_val)
    cs.set_value(ts_w, ts_val)


def keyed_circuit(m):
    """bench_groth16's multiplication chain, for the MSM-dominated stages."""
    cs = ConstraintSystem(FR)
    x = cs.alloc_public(3)
    acc = cs.alloc(3)
    cs.enforce_equal(acc, x)
    for _ in range(m):
        acc = cs.mul(acc, acc + 1)
    return cs


def _fixed_rng():
    vals = [123456789, 987654321]
    return lambda: vals.pop(0)


def _best(fn, rounds):
    best = float("inf")
    for i in range(rounds):
        t0 = perf()
        fn(i)
        best = min(best, perf() - t0)
    return best


def _seeded_rng(seed):
    """Zero-arg BN254 scalar sampler over a private PRNG (None -> None,
    keeping the ``secrets`` default for unseeded runs)."""
    if seed is None:
        return None
    import random

    state = random.Random(seed)
    return lambda: state.randrange(1, BN254_R)


def check_proof_parity(keyed_m, workers, rng=None):
    """Legacy LC, compiled serial, and compiled parallel proofs must be
    byte-identical for the same randomness; returns the proof bytes."""
    cs = keyed_circuit(keyed_m)
    pk, vk, _ = setup(cs, rng=rng)
    parallel = Engine(EngineConfig(workers=workers, min_parallel_rows=1))
    try:
        p_legacy = prove(pk, cs, rng=_fixed_rng(), use_compiled=False)
        p_compiled = prove(pk, cs, rng=_fixed_rng())
        p_parallel = prove(pk, cs, rng=_fixed_rng(), engine=parallel)
        legacy_bytes = proof_to_bytes(p_legacy)
        if proof_to_bytes(p_compiled) != legacy_bytes:
            raise AssertionError("compiled proof differs from legacy LC proof")
        if proof_to_bytes(p_parallel) != legacy_bytes:
            raise AssertionError("parallel proof differs from serial proof")
        verify(prepare(vk), p_compiled, cs.public_inputs())
        return legacy_bytes
    finally:
        parallel.close()


def run(m, keyed_m, workers, rounds, seed=None):
    rng = _seeded_rng(seed)
    eng = Engine()

    with span("bench.synthesize", m=m):
        t0 = perf()
        cs, wires = statement_like_circuit(m)
        synth_s = perf() - t0

    with span("bench.compile"):
        t0 = perf()
        compiled = CompiledCircuit.from_system(cs)
        compile_s = perf() - t0

    # parity: the CSR evaluator must agree with the LC walk bit-for-bit
    lc_evals = evaluate_constraints(cs)
    if compiled.evaluate(cs.values) != lc_evals:
        raise AssertionError("compiled evals differ from LC-walk evals")

    # legacy per-proof cost: re-bind, then walk every LC
    def lc_round(i):
        bind(cs, wires, 100 + i, 200 + i, 300 + i)
        evaluate_constraints(cs)

    lc_s = _best(lc_round, rounds)

    # compiled warm path: one full evaluation seeds the cache, each later
    # proof re-evaluates only the rows reading a re-bound wire
    eng.evaluate_r1cs(cs)

    def compiled_round(i):
        with span("bench.bind", round=i):
            bind(cs, wires, 400 + i, 500 + i, 600 + i)
        with span("bench.evaluate", round=i):
            eng.evaluate_r1cs(cs)

    warm_s = _best(compiled_round, rounds)

    # incremental results must match a from-scratch walk of the same values
    _, inc_evals = eng.evaluate_r1cs(cs)
    if tuple(inc_evals) != tuple(evaluate_constraints(cs)):
        raise AssertionError("incremental evals differ from fresh LC walk")

    evals = evaluate_constraints(cs)
    fft_s = _best(
        lambda i: compute_h_coefficients(cs, eng, evals=evals), rounds
    )

    # MSM-dominated tail, on a circuit small enough to run setup
    with span("bench.keyed_setup", keyed_m=keyed_m):
        kcs = keyed_circuit(keyed_m)
        pk, _, _ = setup(kcs, rng=rng)
        prove(pk, kcs, rng=rng)  # warm the prepared-key and compiled caches
    keyed_eval_s = _best(lambda i: eng.evaluate_r1cs(kcs), rounds)
    keyed_fft_s = _best(
        lambda i: compute_h_coefficients(
            kcs, eng, evals=evaluate_constraints(kcs)
        ),
        rounds,
    )
    prove_s = _best(lambda i: prove(pk, kcs, rng=_fixed_rng()), rounds)
    msm_s = max(prove_s - keyed_eval_s - keyed_fft_s, 0.0)

    proof_bytes = check_proof_parity(keyed_m, workers, rng=rng)

    print(
        "statement-like circuit: m=%d constraints, nnz=%d (A+B+C)"
        % (compiled.num_constraints, compiled.a.nnz + compiled.b.nnz + compiled.c.nnz)
    )
    print("  synthesize:                 %8.3f s" % synth_s)
    print("  compile (CSR lowering):     %8.3f s" % compile_s)
    print("  bind+evaluate, LC walk:     %8.3f s /proof" % lc_s)
    print("  bind+evaluate, compiled:    %8.3f s /proof   (%.1fx)"
          % (warm_s, lc_s / warm_s if warm_s else float("inf")))
    print("  FFT (h coefficients):       %8.3f s" % fft_s)
    print("keyed circuit: m=%d, proof = %d bytes" % (keyed_m, len(proof_bytes)))
    print("  prove, total:               %8.3f s" % prove_s)
    print("  msm + tail (residual):      %8.3f s" % msm_s)
    print("proofs byte-identical across {legacy LC, compiled, workers=%d}"
          % workers)
    results = {
        "m": compiled.num_constraints,
        "nnz": compiled.a.nnz + compiled.b.nnz + compiled.c.nnz,
        "keyed_m": keyed_m,
        "proof_bytes": len(proof_bytes),
        "synthesize_s": synth_s,
        "compile_s": compile_s,
        "bind_evaluate_lc_s": lc_s,
        "bind_evaluate_compiled_s": warm_s,
        "h_coefficients_s": fft_s,
        "prove_s": prove_s,
        "msm_tail_s": msm_s,
        "compiled_speedup": lc_s / warm_s if warm_s else None,
    }
    return results


def overhead_gate(keyed_m, rounds, limit=0.05, seed=None):
    """Enabled-vs-disabled tracing overhead on the smoke prove path.

    Proves the same warmed keyed circuit with tracing off, then on, taking
    the best of ``rounds`` each; fails if enabling tracing costs more than
    ``limit`` (fractional).  Returns (disabled_s, enabled_s, overhead).
    Replay passes ``limit=inf``: under a fake clock the enabled path's
    extra clock reads dominate the "timings", so the ratio is meaningless
    there — only the metric counts are being re-verified.
    """
    rng = _seeded_rng(seed)
    kcs = keyed_circuit(keyed_m)
    pk, _, _ = setup(kcs, rng=rng)
    prove(pk, kcs, rng=rng)  # warm every cache before either timing
    was_enabled = telemetry.is_enabled()
    telemetry.disable()
    disabled_s = _best(lambda i: prove(pk, kcs, rng=_fixed_rng()), rounds)
    telemetry.enable()
    try:
        enabled_s = _best(lambda i: prove(pk, kcs, rng=_fixed_rng()), rounds)
    finally:
        if not was_enabled:
            telemetry.disable()
    overhead = enabled_s / disabled_s - 1.0 if disabled_s else 0.0
    print(
        "tracing overhead: disabled %.3fs, enabled %.3fs -> %+.2f%%"
        % (disabled_s, enabled_s, 100.0 * overhead)
    )
    if overhead > limit:
        raise SystemExit(
            "tracing overhead %.2f%% exceeds the %.0f%% gate"
            % (100.0 * overhead, 100.0 * limit)
        )
    return disabled_s, enabled_s, overhead


def replay(config):
    """Deterministic re-execution core for run certificates.

    Mirrors ``main``'s traced path exactly (outer span included) so a
    traced certificate's span structure reproduces.  The overhead gate is
    re-run for its metric counts but with ``limit=inf`` — fake-clock
    "timings" cannot meaningfully gate overhead.
    """
    m = config.get("m", 20000)
    keyed_m = config.get("keyed_m", 512)
    workers = config.get("workers", 2)
    rounds = config.get("rounds", 3)
    with span("bench.prover_pipeline", m=m, keyed_m=keyed_m, workers=workers):
        results = run(m, keyed_m, workers, rounds, seed=config.get("seed"))
    if config.get("overhead_gate"):
        gate = overhead_gate(keyed_m, max(rounds, 3), limit=float("inf"),
                             seed=config.get("seed"))
        results["overhead_gate"] = {
            "disabled_s": gate[0], "enabled_s": gate[1], "overhead": gate[2],
        }
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Prover pipeline stage timings and compiled-path gates"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized circuits (~1 min)")
    parser.add_argument("-m", type=int, default=None,
                        help="statement-like constraint count "
                             "(default 3000 smoke / 20000)")
    parser.add_argument("--keyed-m", type=int, default=None,
                        help="keyed-circuit chain length (default 96 / 512)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=None,
                        help="pin CRS/warm-up randomness (strict replay)")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing and print the span tree")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_prover_pipeline.json")
    parser.add_argument("--overhead-gate", action="store_true",
                        help="gate enabled-vs-disabled tracing overhead <5%%")
    args = parser.parse_args(argv)

    m = args.m or (3000 if args.smoke else 20000)
    keyed_m = args.keyed_m or (96 if args.smoke else 512)
    if args.trace:
        telemetry.enable()
    with span("bench.prover_pipeline", m=m, keyed_m=keyed_m,
              workers=args.workers):
        results = run(m, keyed_m, args.workers, args.rounds, seed=args.seed)
    if args.overhead_gate:
        gate = overhead_gate(keyed_m, max(args.rounds, 3), seed=args.seed)
        results["overhead_gate"] = {
            "disabled_s": gate[0], "enabled_s": gate[1], "overhead": gate[2],
        }
    if args.trace:
        print()
        print(telemetry.render_trace())
    if not args.no_record:
        config = {
            "m": m, "keyed_m": keyed_m, "workers": args.workers,
            "rounds": args.rounds, "smoke": args.smoke, "trace": args.trace,
            "seed": args.seed, "overhead_gate": args.overhead_gate,
        }
        path = write_bench_record("prover_pipeline", config, results)
        print("wrote %s" % path)
    speedup = results["compiled_speedup"] or float("inf")
    if speedup < 2.0:
        raise SystemExit(
            "compiled bind+evaluate below the 2x target: %.2fx" % speedup
        )
    print("ok")


if __name__ == "__main__":
    main()
