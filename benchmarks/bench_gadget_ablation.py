"""§4 / Appendix B ablations: NOPE's parsing primitives vs the naive ones.

Paper costs:  mask 2L+1 vs L(2+ceil(log L));  slice ~M log M (effectively
O(M) for small L) vs M*L;  scan 4/byte (ours measures 5/byte + indicator).
"""

import pytest

from repro.ec.curves import BN254_R
from repro.field import PrimeField
from repro.gadgets.bits import alloc_bytes
from repro.gadgets.strings import (
    mask,
    mask_naive,
    scan,
    slice_and_pack,
    slice_gadget,
    slice_naive,
)
from repro.r1cs import ConstraintSystem

FR = PrimeField(BN254_R)


def cost_of(builder):
    cs = ConstraintSystem(FR, counting_only=True)
    builder(cs)
    return cs.num_constraints


def replay(config):
    """Run-certificate replay core: every ablated gadget cost this module
    measures, via the same counting-only systems — deterministic."""
    costs = {}
    for length in (32, 128, 512):
        costs["mask/%d" % length] = cost_of(
            lambda cs: mask(cs, _arr(cs, length), cs.alloc(3))
        )
        costs["mask_naive/%d" % length] = cost_of(
            lambda cs: mask_naive(cs, _arr(cs, length), cs.alloc(3))
        )
    for msg_len, out_len in ((64, 8), (256, 16), (512, 32)):
        def run_nope(cs):
            buf = alloc_bytes(cs, bytes(msg_len), range_check=False)
            slice_gadget(cs, buf, cs.alloc(5), out_len)

        costs["slice/%d/%d" % (msg_len, out_len)] = cost_of(run_nope)
    return {"constraint_costs": costs}


def _arr(cs, n):
    return [cs.alloc(i % 251) for i in range(n)]


@pytest.mark.parametrize("length", [32, 128, 512])
def test_mask_costs(benchmark, length):
    nope = cost_of(lambda cs: mask(cs, _arr(cs, length), cs.alloc(3)))
    naive = cost_of(lambda cs: mask_naive(cs, _arr(cs, length), cs.alloc(3)))
    benchmark.pedantic(
        lambda: cost_of(lambda cs: mask(cs, _arr(cs, length), cs.alloc(3))),
        rounds=1, iterations=1,
    )
    per_elem_nope = (nope - length) / length  # subtract the allocs
    assert nope < naive
    print(
        "\n  mask L=%4d: NOPE %6d (2L+1=%d) vs naive %6d (%.1fx)"
        % (length, nope - length, 2 * length + 1, naive - length, naive / nope)
    )


@pytest.mark.parametrize("msg_len,out_len", [(64, 8), (256, 16), (512, 32)])
def test_slice_costs(benchmark, msg_len, out_len):
    def run_nope(cs):
        buf = alloc_bytes(cs, bytes(msg_len), range_check=False)
        slice_gadget(cs, buf, cs.alloc(5), out_len)

    def run_naive(cs):
        buf = alloc_bytes(cs, bytes(msg_len), range_check=False)
        slice_naive(cs, buf, cs.alloc(5), out_len)

    def run_pack(cs):
        buf = alloc_bytes(cs, bytes(msg_len), range_check=False)
        slice_and_pack(cs, buf, cs.alloc(5), out_len)

    nope = cost_of(run_nope)
    naive = cost_of(run_naive)
    packed = cost_of(run_pack)
    benchmark.pedantic(lambda: cost_of(run_nope), rounds=1, iterations=1)
    assert nope < naive
    print(
        "\n  slice M=%4d L=%3d: NOPE %7d, sliceAndPack %7d, naive %8d (%.1fx)"
        % (msg_len, out_len, nope, packed, naive, naive / nope)
    )


def test_scan_cost_per_byte(benchmark):
    msg = bytearray(b"hd")
    for i in range(20):
        msg += bytes([4, 1, i, i])

    def run(cs):
        buf = alloc_bytes(cs, bytes(msg), range_check=False)
        scan(cs, buf, cs.alloc(2), header_len=2)

    total = cost_of(run)
    benchmark.pedantic(lambda: cost_of(run), rounds=1, iterations=1)
    per_byte = (total - len(msg)) / len(msg)
    print(
        "\n  scan: %.2f constraints/byte (paper: 4; ours keeps the length "
        "extraction as a separate multiplication)" % per_byte
    )
    assert per_byte < 6


def test_gadget_incidence_stats(benchmark):
    """Audit-grade incidence per registry gadget, next to the raw counts.

    ``bilinear`` rows are where soundness lives (a wire only affine rows
    touch is a hint, not a commitment); ``touch`` is rows-per-wire — how
    entangled the gadget's wires are, which tracks both audit cost and the
    density the prover's CSR evaluation sees.
    """
    from repro.lint import GADGET_AUDITS, build_gadget_system, incidence_stats

    all_stats = {}

    def run_all():
        for name in GADGET_AUDITS:
            all_stats[name] = incidence_stats(build_gadget_system(name))

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(
        "\n  %-28s %8s %8s %9s %8s %6s" % (
            "gadget", "wires", "constrs", "bilinear", "linear", "touch"
        )
    )
    for name, s in all_stats.items():
        print(
            "  %-28s %8d %8d %9d %8d %6.1f"
            % (
                name,
                s["wires"],
                s["constraints"],
                s["bilinear_rows"],
                s["linear_rows"],
                s["avg_rows_per_wire"],
            )
        )
        assert s["bilinear_rows"] + s["linear_rows"] == s["constraints"]
        assert s["wires_used"] <= s["wires"]
