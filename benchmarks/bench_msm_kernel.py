"""Microbench: the Pippenger MSM kernel, before vs after the raw-speed pass.

Times :func:`repro.engine.msm.msm_reference` (the pre-refactor unsigned
bucket kernel, kept verbatim) against :func:`repro.engine.msm.msm_generic`
(signed-digit windows + batched-affine buckets + GLV) on BN254 G1, at the
smoke sizes the Groth16 prover actually issues (``msm.points`` tops out at
224 on the smoke circuit) plus one larger size.  Both kernels must agree on
the affine result at every size before any number is recorded.

Run::

    PYTHONPATH=src python benchmarks/bench_msm_kernel.py [--smoke] [--gate]

``--gate`` enforces the raw-speed floor: the optimized kernel must be at
least ``GATE_SPEEDUP``x faster than the reference at every measured size.
The before/after pair is persisted to ``BENCH_msm_kernel.json``.

``--backend {auto,mont,canonical}`` forces the group's coordinate
representation for the timed ``msm_generic`` runs (auto defers to the
calibrated field backend).  Whatever backend is timed, every size also
asserts that a Montgomery-representation group reproduces the canonical
kernel's affine result exactly, so the parity check runs on every CI
pass regardless of which representation calibration picked.
"""

import random

from repro.ec.curve import jac_to_affine
from repro.ec.curves import BN254_G1
from repro.engine.group import JacobianGroup
from repro.engine.msm import msm_generic, msm_reference
from repro.telemetry.bench import write_bench_record
from repro.telemetry.clocks import perf

#: minimum required speedup of msm_generic over msm_reference (--gate)
GATE_SPEEDUP = 1.3

#: (seed, n) workloads; the smoke set mirrors the prover's real MSM sizes
SMOKE_SIZES = ((303, 96), (404, 224))
FULL_SIZES = SMOKE_SIZES + ((505, 512),)


def _workload(curve, seed, n):
    """n (affine point, 254-bit scalar) pairs from a fixed seed."""
    rng = random.Random(seed)
    g = curve.generator
    bases, scalars = [], []
    for _ in range(n):
        pt = rng.randrange(1, 1 << 20) * g
        bases.append((pt.x, pt.y))
        scalars.append(rng.randrange(1, curve.order))
    return bases, scalars


def _time(fn, rounds):
    best = None
    for _ in range(rounds):
        t0 = perf()
        fn()
        dt = perf() - t0
        best = dt if best is None or dt < best else best
    return best


def run(sizes, rounds=3, backend="auto"):
    """Measure each workload; returns a list of per-size result dicts.

    Raises AssertionError if the kernels ever disagree on the affine
    result — a benchmark of a wrong kernel is worse than no benchmark.
    The Montgomery-representation group is parity-checked at every size
    even when it is not the representation being timed.
    """
    curve = BN254_G1
    rep = {"auto": "auto", "mont": "mont", "canonical": "canonical"}[backend]
    group = JacobianGroup(curve, rep=rep)
    mont_group = JacobianGroup(curve, rep="mont")
    out = []
    for seed, n in sizes:
        bases, scalars = _workload(curve, seed, n)
        ref = jac_to_affine(curve, msm_reference(group, bases, scalars))
        opt = jac_to_affine(curve, msm_generic(group, bases, scalars))
        assert ref == opt, "kernel parity violated at n=%d" % n
        mont = jac_to_affine(curve, msm_generic(mont_group, bases, scalars))
        assert ref == mont, "montgomery parity violated at n=%d" % n
        before = _time(lambda: msm_reference(group, bases, scalars), rounds)
        after = _time(lambda: msm_generic(group, bases, scalars), rounds)
        out.append({
            "n": n,
            "seed": seed,
            "before_s": before,
            "after_s": after,
            "speedup": before / after,
        })
    return out


def replay(config):
    """Deterministic re-execution core for run certificates.

    The workloads are fully seed-driven (``size_pairs``), so under the
    replay harness's fake clock the metric counts — ``msm.calls``,
    ``msm.bucket_adds``, ``field.mont_muls`` — reproduce bit-identically.
    Certificates from before ``size_pairs`` existed fall back to mapping
    the recorded sizes onto the canonical seed table.
    """
    pairs = config.get("size_pairs")
    if pairs is None:
        seed_for = {n: seed for seed, n in FULL_SIZES}
        pairs = [[seed_for[n], n] for n in config.get("sizes", [])]
    return {
        "per_size": run(
            [tuple(pair) for pair in pairs],
            rounds=config.get("rounds", 3),
            backend=config.get("backend", "auto"),
        ),
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Pippenger kernel before/after microbench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="prover-sized workloads only (CI-sized)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per size (best-of)")
    parser.add_argument(
        "--gate", action="store_true",
        help="fail (exit 1) unless every size clears %.1fx" % GATE_SPEEDUP,
    )
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_msm_kernel.json")
    parser.add_argument(
        "--backend", choices=("auto", "mont", "canonical"), default="auto",
        help="coordinate representation for the timed optimized kernel "
             "(auto = whatever field calibration picked)",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    results = run(sizes, rounds=args.rounds, backend=args.backend)
    print("BN254 G1 Pippenger kernel, reference (unsigned) vs optimized "
          "(signed + batch-affine + GLV, backend=%s):" % args.backend)
    for row in results:
        print("  n=%4d   before %7.1f ms   after %7.1f ms   %.2fx"
              % (row["n"], row["before_s"] * 1e3, row["after_s"] * 1e3,
                 row["speedup"]))
    if not args.no_record:
        config = {"curve": "bn254-g1", "smoke": args.smoke,
                  "rounds": args.rounds, "backend": args.backend,
                  "sizes": [n for _, n in sizes],
                  "size_pairs": [list(pair) for pair in sizes]}
        record = {"per_size": results,
                  "min_speedup": min(r["speedup"] for r in results)}
        print("wrote %s" % write_bench_record("msm_kernel", config, record))
    slow = [r for r in results if r["speedup"] < GATE_SPEEDUP]
    if args.gate and slow:
        for row in slow:
            print("REGRESSION: n=%d speedup %.2f < %.1f floor"
                  % (row["n"], row["speedup"], GATE_SPEEDUP))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
