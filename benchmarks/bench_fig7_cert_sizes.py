"""Figure 7: byte-level decomposition of a NOPE certificate chain.

Uses PRODUCTION-scale key material (P-256 certificates, RSA-2048 root,
P-256 DNSSEC zones) because Figure 7 is about bytes on the wire — the
proof body is always 128 raw bytes regardless of scale, but certificate
and DNSSEC-chain sizes depend on real key sizes.

Paper: chain 2554 B; encoded NOPE proof 248 B (9.7%); raw 128 B (5.0%);
DCE 5870 B (229.8%).  This repo wraps the 128-byte body in the canonical
197-byte wire envelope (kind/version/flags + statement digest + nullifier,
see repro.wire), so the encoded SAN payload is ~350 chars across 7 labels
instead of the paper's ~200 — the extra ~69 B header/nullifier overhead is
the price of domain-rebinding and reuse protection, and stays well under
the paper's "small fraction of the chain" claim checked below.
"""

import secrets

import pytest

from repro.ca import CertificationAuthority, CtLog
from repro.clock import DAY, SimClock
from repro.core import DceServer
from repro.ec import P256
from repro.profiles import PRODUCTION, build_hierarchy
from repro.sig import EcdsaPrivateKey
from repro.wire import KIND_SIMULATION, VERSION_PRODUCTION, envelope_to_sans, seal
from repro.x509 import is_nope_san, oid, parse_tree
from repro.x509.cert import SubjectPublicKeyInfo


def replay(config):
    """Run-certificate replay core: the SAN-payload decomposition over a
    fixed 128-byte body (byte-for-byte what the figure measures; the CA
    issuance in the fixture depends on secrets-generated keys, which a
    deterministic replay cannot reproduce)."""
    body = bytes((i * 53 + 7) % 251 for i in range(128))
    env = seal(
        KIND_SIMULATION, VERSION_PRODUCTION, body, "nope-tools.org",
        shape_id="bench/fig7",
    )
    sans = envelope_to_sans(env)
    return {
        "san_labels": len(sans),
        "encoded_proof_bytes": sum(len(s) for s in sans),
        "raw_proof_bytes": len(body),
        "wire_envelope_bytes": 197,
    }


@pytest.fixture(scope="module")
def cert_world():
    domain = "nope-tools.org"
    clock = SimClock()
    hierarchy = build_hierarchy(
        PRODUCTION, [domain],
        inception=clock.now() - DAY, expiration=clock.now() + 365 * DAY,
    )
    logs = [CtLog("log-a", clock), CtLog("log-b", clock)]
    ca = CertificationAuthority("Repro Encrypt", clock, logs, P256)
    tls_key = EcdsaPrivateKey.generate(P256)
    # Figure 7 measures bytes; the SAN payload is identical for any
    # 128-byte body, so a placeholder sealed under the simulation kind
    # keeps this bench fast (the groth16 codec would insist on real points)
    env = seal(
        KIND_SIMULATION, VERSION_PRODUCTION, secrets.token_bytes(128),
        domain, shape_id="bench/fig7",
    )
    sans = [domain] + envelope_to_sans(env)
    chain = ca.issue(domain, SubjectPublicKeyInfo(tls_key.public_key), sans)
    dce = DceServer(
        hierarchy, domain, tls_key.public_key.encode(), now=clock.now()
    )
    return {"chain": chain, "dce": dce, "domain": domain}


def decompose(chain):
    leaf_der = chain[0].to_der()
    inter_der = chain[1].to_der()
    leaf = chain[0]
    rows = {}
    rows["Certificate Chain"] = len(leaf_der) + len(inter_der)
    rows["Intermediate Certificate"] = len(inter_der)
    rows["Subscriber Certificate"] = len(leaf_der)
    rows["Subject public key"] = len(leaf.spki.to_der())
    rows["Extensions"] = sum(len(e.to_der()) for e in leaf.extensions)
    sct_ext = leaf.extension(oid.OID_EXT_SCT_LIST)
    rows["SCT"] = len(sct_ext.to_der()) if sct_ext else 0
    aia_ext = leaf.extension(oid.OID_EXT_AIA)
    rows["OCSP"] = len(aia_ext.to_der()) if aia_ext else 0
    rows["Signature"] = len(leaf.signature)
    rows["Encoded NOPE proof"] = sum(
        len(n) for n in leaf.san_names() if is_nope_san(n)
    )
    rows["Wire envelope"] = 197
    rows["Raw NOPE proof"] = 128
    return rows


def test_encode_chain(benchmark, cert_world):
    benchmark(lambda: [c.to_der() for c in cert_world["chain"]])


def test_asn1_walk(benchmark, cert_world):
    der = cert_world["chain"][0].to_der()
    nodes = benchmark(lambda: parse_tree(der))
    assert nodes[0].total_len == len(der)


def test_zz_print_decomposition(benchmark, cert_world):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = decompose(cert_world["chain"])
    total = rows["Certificate Chain"]
    print("\n== Figure 7: certificate chain decomposition (production keys) ==")
    for name, size in rows.items():
        print("  %-26s %6d B  %6.1f%%" % (name, size, 100.0 * size / total))
    dce_size = cert_world["dce"].bandwidth()
    print(
        "  %-26s %6d B  %6.1f%%  (paper: 5870 B, 229.8%%)"
        % ("DCE chain", dce_size, 100.0 * dce_size / total)
    )
    assert rows["Raw NOPE proof"] == 128
    assert rows["Wire envelope"] == 197
    # v1 SANs carry the 197-byte envelope as 350 base-37 chars plus the
    # per-SAN "n<k>pe." prefixes and parent-domain suffixes
    assert rows["Encoded NOPE proof"] >= 350
    # the paper's shape: DCE costs substantially more than the NOPE proof,
    # and more than the whole certificate chain
    assert dce_size > total
    # paper: 248/2554 = 9.7%.  Here the envelope adds ~150 encoded chars
    # and the simulated chain is leaner than a real production chain, so
    # the share rises to ~27% — still a minor fraction of the chain
    assert rows["Encoded NOPE proof"] < 0.30 * total
