"""Shared fixtures for the benchmark suite.

``groth16_world`` runs the expensive pure-Python trusted setup once per
session (depth-1 toy statement, ~20k constraints) and is shared by the
Figure 4 and Figure 5 benches, which need *real* proofs and verifications.
"""

import os

import pytest

from repro.ca import AcmeServer, CertificationAuthority, CtLog, PlainDnsView
from repro.clock import DAY, SimClock
from repro.core import NopeClient, NopeProver, PinStore
from repro.ec import TOY29
from repro.profiles import TOY, build_hierarchy
from repro.sig import EcdsaPrivateKey


def pytest_sessionfinish(session, exitstatus):
    """Emit one BENCH_<module>.json per pytest-benchmark module.

    Mirrors the structured records the script-style benches write, so every
    bench run — pytest or direct — leaves a machine-readable artifact.
    ``write_bench_record`` also emits each module's chained
    ``CERT_<module>.json`` run certificate; because the metrics snapshot in
    a pytest-session record spans every module that ran, these certificates
    are *structural* replay targets (``python -m repro.telemetry replay``
    re-executes the module's ``replay(config)`` core twice and requires the
    two executions to agree bit-identically, rather than matching the
    session-wide snapshot).  Guarded defensively: absent or drifted
    pytest-benchmark internals must never fail the bench session itself.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    try:
        from repro.telemetry.bench import write_bench_record

        per_module = {}
        for bench in benchmarks:
            stats = getattr(bench, "stats", None)
            if stats is None:
                continue
            module = bench.fullname.split("::")[0]
            name = os.path.splitext(os.path.basename(module))[0]
            per_module.setdefault(name, {})[bench.name] = {
                "min_s": stats.min,
                "mean_s": stats.mean,
                "rounds": stats.rounds,
            }
        for name, results in per_module.items():
            write_bench_record(name, {"pytest_benchmark": True}, results)
    except Exception as exc:  # never fail the bench run over reporting
        print("conftest: skipping BENCH_*.json emission: %s" % exc)


@pytest.fixture(scope="session")
def groth16_world():
    clock = SimClock()
    hierarchy = build_hierarchy(
        TOY,
        ["nope-tools"],
        inception=clock.now() - DAY,
        expiration=clock.now() + 365 * DAY,
    )
    logs = [CtLog("log-a", clock), CtLog("log-b", clock)]
    ca = CertificationAuthority("Repro Encrypt", clock, logs, TOY29)
    acme = AcmeServer(ca, PlainDnsView(hierarchy), clock)
    prover = NopeProver(TOY, hierarchy, "nope-tools", backend="groth16")
    prover.trusted_setup()
    tls_key = EcdsaPrivateKey.generate(TOY29)
    chain, timeline = prover.obtain_certificate(acme, tls_key, clock)
    client = NopeClient(
        TOY,
        ca.trust_anchors(),
        root_zsk_dnskey=prover.root_zsk_dnskey(),
        backend=prover.backend,
        pin_store=PinStore(),
    )
    client.register_statement(prover.statement, prover.keys)
    legacy_client = NopeClient(TOY, ca.trust_anchors(), nope_aware=False)
    return {
        "clock": clock,
        "hierarchy": hierarchy,
        "ca": ca,
        "acme": acme,
        "prover": prover,
        "tls_key": tls_key,
        "chain": chain,
        "timeline": timeline,
        "client": client,
        "legacy_client": legacy_client,
    }
